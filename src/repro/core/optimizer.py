"""The Vista optimizer — Algorithm 1 of the paper.

Given the user's inputs (Table 1A) the optimizer linear-searches the
per-worker degree of parallelism ``cpu`` downward from
``min(cpu_sys, cpu_max) - 1``, and for each candidate checks the
memory constraints of Eqs. 9-15:

  - Eq. 10: User Memory must hold the serialized CNN plus each
    concurrent task's feature partition (times the blowup factor
    alpha), or the downstream models if M runs in PD User Memory.
  - Eq. 11: DL Execution Memory holds ``cpu`` CNN replicas (and M's
    replicas when M is a DL model).
  - Eq. 12: all regions fit in System Memory.
  - Eq. 13-14: ``np`` is a multiple of total worker processes and
    bounds partitions to ``p_max``.
  - Eq. 15: on GPUs, ``cpu`` model replicas fit in GPU memory.

The surviving candidate with the largest ``cpu`` wins (Eq. 8's
simplified objective); remaining variables are then set: Storage gets
the leftover worker memory, the join is broadcast iff |Tstr| fits
``b_max``, and persistence downgrades to serialized when Storage
cannot hold two consecutive intermediates (s_double).

The search itself is exposed through :func:`enumerate_candidates`,
which yields one :class:`CandidateRecord` per ``cpu`` — every Eq. 9-15
memory term plus a structured rejection reason for infeasible
candidates — so EXPLAIN (:mod:`repro.explain`) can show the complete
ledger of the search Algorithm 1 performed. :func:`optimize` is a thin
consumer of the same generator: it stops at the first feasible
candidate, exactly as before.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.config import (
    DownstreamSpec,
    SystemDefaults,
    VistaConfig,
)
from repro.core.sizing import estimate_sizes, static_storage_need
from repro.dataflow.joins import BROADCAST, SHUFFLE
from repro.dataflow.partition import DESERIALIZED, SERIALIZED
from repro.exceptions import NoFeasiblePlan
from repro.metrics import NULL_METRICS
from repro.trace import NULL_TRACER


#: Per-thread inference input buffer: a batch of 32 decoded 227x227x3
#: float32 image tensors ("buffers to read inputs" — Section 4.1 (2)).
BATCH_INPUT_BYTES = 32 * 227 * 227 * 3 * 4

#: |M|_mem model: a base footprint plus bytes proportional to the
#: feature dimension ("|M| is proportional to the sum of structured
#: features and the maximum number of CNN features for any layer").
DOWNSTREAM_BASE_BYTES = 64 * 1024 * 1024
DOWNSTREAM_BYTES_PER_FEATURE = 32 * 1024

#: Structured rejection codes attached to infeasible candidates.
REJECT_GPU = "gpu-memory"                      # Eq. 15
REJECT_HEADROOM = "memory-headroom"            # Eq. 12
REJECT_IGNITE_STORAGE = "ignite-static-storage"

#: Numeric encodings of the categorical plan knobs, published as
#: ``plan_choice`` gauges so ``report --compare`` can gate on a plan
#: flip between two runs (any change is a regression, see
#: :func:`repro.report.run_report.compare`).
JOIN_CODES = {SHUFFLE: 0, BROADCAST: 1}
PERSISTENCE_CODES = {DESERIALIZED: 0, SERIALIZED: 1}


def downstream_mem_bytes(model_stats, layers, num_structured_features):
    """Estimate |M|_mem for the default MLlib-style downstream model."""
    max_dim = max(
        model_stats.layer_stats(layer).transfer_dim for layer in layers
    )
    return DOWNSTREAM_BASE_BYTES + DOWNSTREAM_BYTES_PER_FEATURE * (
        num_structured_features + max_dim
    )


def user_memory_requirement(model_stats, s_single, num_partitions, cpu,
                            downstream_mem, alpha):
    """Eq. 10's User Memory requirement, shared by the optimizer and
    the cost model's crash checks so the two can never disagree.

    We take the *sum* of the inference-side objects (serialized CNN,
    per-thread input batch buffers, per-thread feature partitions) and
    the downstream-model copies rather than Eq. 10's max(): the feature
    TensorLists and M's representations coexist during training, so the
    sum is the safe bound (and it is what makes Ignite's small on-heap
    User region crash at 7 threads in Figure 6).
    """
    partition_bytes = math.ceil(s_single / max(1, num_partitions))
    return (
        model_stats.serialized_bytes
        + cpu * alpha * partition_bytes
        + cpu * alpha * BATCH_INPUT_BYTES
        + cpu * downstream_mem
    )


def num_partitions_for(s_single, cpu, num_nodes, max_partition_bytes):
    """``NumPartitions`` of Algorithm 1: the smallest multiple of the
    total core count whose partitions fit under ``p_max`` (Eqs. 13-14)."""
    total_cores = cpu * num_nodes
    multiples = math.ceil(s_single / (max_partition_bytes * total_cores))
    return max(1, multiples) * total_cores


@dataclass
class CandidateRecord:
    """One row of the Algorithm 1 search ledger: every memory term the
    optimizer computed for one ``cpu`` candidate, plus the verdict.

    All byte quantities are per-worker unless suffixed ``_per_cluster``.
    ``join``/``persistence`` are only determined once a candidate passes
    the Eq. 12 headroom check (Algorithm 1 derives them from the
    surviving candidate's leftover Storage), so they are ``None`` on
    candidates rejected earlier.
    """

    cpu: int
    num_partitions: int
    mem_system_bytes: int          # Eq. 12 left-hand budget
    mem_os_reserved_bytes: int
    mem_dl_bytes: int              # Eq. 11
    mem_worker_bytes: int          # system - OS reserved - DL
    mem_user_bytes: int            # Eq. 10
    mem_core_bytes: int            # committed Core Memory floor
    mem_storage_bytes: int         # leftover; <= 0 when infeasible
    gpu_needed_bytes: int = 0      # Eq. 15 demand (0 without a GPU)
    gpu_capacity_bytes: int = 0
    join: str | None = None
    persistence: str | None = None
    storage_per_cluster_bytes: int = 0
    static_storage_need_bytes: int | None = None   # ignite backend only
    feasible: bool = False
    chosen: bool = False
    rejection: dict | None = None

    def reject(self, code, detail):
        self.feasible = False
        self.rejection = {"code": code, "detail": detail}
        return self

    def region_bytes(self):
        """Per-region predicted requirement/budget of this candidate,
        keyed like the executor's ``region_budget_bytes``."""
        return {
            "user": self.mem_user_bytes,
            "dl": self.mem_dl_bytes,
            "core": self.mem_core_bytes,
            "storage": max(0, self.mem_storage_bytes),
        }

    def to_dict(self):
        return {
            "cpu": self.cpu,
            "num_partitions": self.num_partitions,
            "mem_system_bytes": self.mem_system_bytes,
            "mem_os_reserved_bytes": self.mem_os_reserved_bytes,
            "mem_dl_bytes": self.mem_dl_bytes,
            "mem_worker_bytes": self.mem_worker_bytes,
            "mem_user_bytes": self.mem_user_bytes,
            "mem_core_bytes": self.mem_core_bytes,
            "mem_storage_bytes": self.mem_storage_bytes,
            "gpu_needed_bytes": self.gpu_needed_bytes,
            "gpu_capacity_bytes": self.gpu_capacity_bytes,
            "join": self.join,
            "persistence": self.persistence,
            "storage_per_cluster_bytes": self.storage_per_cluster_bytes,
            "static_storage_need_bytes": self.static_storage_need_bytes,
            "feasible": self.feasible,
            "chosen": self.chosen,
            "rejection": dict(self.rejection) if self.rejection else None,
        }


def config_from_candidate(candidate):
    """The :class:`VistaConfig` a feasible candidate executes as."""
    if not candidate.feasible:
        raise NoFeasiblePlan(
            f"candidate cpu={candidate.cpu} is infeasible: "
            f"{candidate.rejection}"
        )
    return VistaConfig(
        cpu=candidate.cpu,
        num_partitions=candidate.num_partitions,
        mem_storage_bytes=candidate.mem_storage_bytes,
        mem_user_bytes=candidate.mem_user_bytes,
        mem_dl_bytes=candidate.mem_dl_bytes,
        join=candidate.join,
        persistence=candidate.persistence,
    )


def evaluate_candidate(model_stats, layers, dataset_stats, resources,
                       cpu, downstream=None, defaults=None,
                       backend="spark", sizing=None):
    """Evaluate one ``cpu`` candidate exactly as Algorithm 1's loop
    body would, returning its :class:`CandidateRecord` — the verdict,
    every Eq. 9-15 term, and a structured rejection when infeasible.

    What-if analysis calls this directly to price a pinned ``cpu``
    (even one the normal search range would never visit)."""
    downstream = downstream or DownstreamSpec()
    defaults = defaults or SystemDefaults()
    if sizing is None:
        sizing = estimate_sizes(
            model_stats, layers, dataset_stats, alpha=defaults.alpha
        )
    f_mem = model_stats.runtime_mem_bytes
    m_mem = downstream.mem_bytes
    if m_mem is None:
        m_mem = downstream_mem_bytes(
            model_stats, layers, dataset_stats.num_structured_features
        )
    np_ = num_partitions_for(
        sizing.s_single, cpu, resources.num_nodes,
        defaults.max_partition_bytes,
    )
    mem_dl = _dl_memory(cpu, f_mem, downstream, m_mem)
    mem_worker = (
        resources.system_memory_bytes
        - defaults.os_reserved_bytes
        - mem_dl
    )
    mem_user = int(user_memory_requirement(
        model_stats, sizing.s_single, np_, cpu, m_mem, defaults.alpha
    ))
    mem_storage = int(
        mem_worker - mem_user - defaults.core_memory_bytes
    )
    candidate = CandidateRecord(
        cpu=cpu,
        num_partitions=np_,
        mem_system_bytes=resources.system_memory_bytes,
        mem_os_reserved_bytes=defaults.os_reserved_bytes,
        mem_dl_bytes=mem_dl,
        mem_worker_bytes=mem_worker,
        mem_user_bytes=mem_user,
        mem_core_bytes=defaults.core_memory_bytes,
        mem_storage_bytes=mem_storage,
    )
    if resources.has_gpu:
        per_replica = max(
            model_stats.gpu_mem_bytes, downstream.gpu_mem_bytes
        )
        candidate.gpu_needed_bytes = cpu * per_replica
        candidate.gpu_capacity_bytes = resources.gpu_memory_bytes
        if not _gpu_feasible(cpu, model_stats, downstream, resources):
            return candidate.reject(REJECT_GPU, (
                f"Eq. 15: {cpu} model replicas need "
                f"{candidate.gpu_needed_bytes} B of GPU memory, "
                f"only {candidate.gpu_capacity_bytes} B available"
            ))
    if mem_storage <= 0:
        return candidate.reject(REJECT_HEADROOM, (
            f"Eq. 12: User {mem_user} B + Core "
            f"{defaults.core_memory_bytes} B exceed the "
            f"{mem_worker} B left after OS and DL reservations"
        ))
    candidate.join = (
        BROADCAST
        if sizing.structured_table_bytes < defaults.max_broadcast_bytes
        else SHUFFLE
    )
    storage_per_cluster = mem_storage * resources.num_nodes
    candidate.storage_per_cluster_bytes = storage_per_cluster
    candidate.persistence = (
        SERIALIZED if storage_per_cluster < sizing.s_double
        else DESERIALIZED
    )
    if backend == "ignite":
        needed = static_storage_need(
            sizing.s_single, candidate.persistence,
            model_stats.serialized_ratio, alpha=defaults.alpha,
        )
        candidate.static_storage_need_bytes = needed
        if needed > storage_per_cluster:
            return candidate.reject(REJECT_IGNITE_STORAGE, (
                f"Ignite's static Storage region holds "
                f"{storage_per_cluster} B cluster-wide but the "
                f"largest cached stage needs {needed} B; a lower "
                f"cpu frees more Storage"
            ))
    candidate.feasible = True
    return candidate


def enumerate_candidates(model_stats, layers, dataset_stats, resources,
                         downstream=None, defaults=None, backend="spark",
                         sizing=None):
    """Yield a :class:`CandidateRecord` for every ``cpu`` Algorithm 1's
    linear search considers, highest candidate first.

    This is the search itself: :func:`optimize` consumes records until
    the first feasible one, EXPLAIN exhausts the generator for the full
    ledger. Feasibility semantics are bit-identical to the original
    inline loop — each record carries the Eq. 9-15 terms that decided
    its verdict and, when rejected, a structured ``rejection`` with a
    machine-readable ``code`` and a human-readable ``detail``.
    """
    defaults = defaults or SystemDefaults()
    if sizing is None:
        sizing = estimate_sizes(
            model_stats, layers, dataset_stats, alpha=defaults.alpha
        )
    upper = min(resources.cores_per_node, defaults.cpu_max) - 1
    for cpu in range(max(1, upper), 0, -1):
        yield evaluate_candidate(
            model_stats, layers, dataset_stats, resources, cpu,
            downstream=downstream, defaults=defaults, backend=backend,
            sizing=sizing,
        )


def optimize(model_stats, layers, dataset_stats, resources,
             downstream=None, defaults=None, backend="spark",
             tracer=None, metrics=None):
    """Run Algorithm 1 and return a :class:`VistaConfig`.

    Raises :class:`NoFeasiblePlan` when System Memory cannot satisfy
    the constraints for any ``cpu`` (line 18 of Algorithm 1).

    ``backend="ignite"`` adds one constraint beyond the paper's
    algorithm: Ignite's memory-only Storage region is static and cannot
    spill, so the Staged plan's largest cached stage (under the chosen
    persistence format) must fit cluster-wide Storage — otherwise the
    candidate ``cpu`` is rejected (lower cpu frees more Storage) and
    ultimately NoFeasiblePlan is raised.

    With a ``tracer`` (:class:`~repro.trace.Tracer`), the search runs
    under an ``optimize`` span recording the chosen configuration, how
    many ``cpu`` candidates were rejected, and the Eq. 16 size
    estimates the decision rested on — so traces can be checked against
    what the executor actually measured.

    With a ``metrics`` registry, the chosen configuration's per-region
    requirements (Eqs. 10-11 and the storage working set) are published
    as ``predicted_peak_bytes`` gauges, and the chosen knobs themselves
    as ``plan_choice`` gauges, so a metrics-enabled run records the
    optimizer's prediction next to the observed occupancy peaks and
    both estimate error and plan flips become first-class metrics.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    metrics = metrics if metrics is not None else NULL_METRICS
    downstream = downstream or DownstreamSpec()
    defaults = defaults or SystemDefaults()
    sizing = estimate_sizes(
        model_stats, layers, dataset_stats, alpha=defaults.alpha
    )
    with tracer.span("optimize", backend=backend,
                     model=model_stats.name) as span:
        span.set("estimated_table_bytes",
                 dict(sizing.intermediate_table_bytes))
        span.set("s_single", sizing.s_single)
        span.set("s_double", sizing.s_double)
        upper = min(resources.cores_per_node, defaults.cpu_max) - 1
        for candidate in enumerate_candidates(
            model_stats, layers, dataset_stats, resources,
            downstream=downstream, defaults=defaults, backend=backend,
            sizing=sizing,
        ):
            if not candidate.feasible:
                span.add("candidates_rejected")
                continue
            candidate.chosen = True
            config = config_from_candidate(candidate)
            span.set("chosen", {
                "cpu": config.cpu,
                "num_partitions": config.num_partitions,
                "join": config.join,
                "persistence": config.persistence,
                "mem_storage_bytes": config.mem_storage_bytes,
                "mem_user_bytes": config.mem_user_bytes,
                "mem_dl_bytes": config.mem_dl_bytes,
            })
            _record_predictions(
                metrics, config, sizing, resources, defaults,
                model_stats,
            )
            _record_choice(metrics, config)
            return config
        raise NoFeasiblePlan(
            f"no cpu in [1, {max(1, upper)}] satisfies the memory "
            f"constraints for {model_stats.name} on "
            f"{resources.system_memory_bytes} B nodes; "
            "provision machines with more memory"
        )


def _record_predictions(metrics, config, sizing, resources, defaults,
                        model_stats):
    """Publish the optimizer's per-worker peak predictions: Eq. 10
    (User), Eq. 11 (DL), and the Staged plan's two-consecutive-
    intermediates storage working set, so reports can score predicted
    vs observed occupancy."""
    if not metrics.enabled:
        return
    storage_need = static_storage_need(
        sizing.s_double, config.persistence,
        model_stats.serialized_ratio, alpha=defaults.alpha,
    )
    predictions = {
        "user": config.mem_user_bytes,
        "dl": config.mem_dl_bytes,
        "storage": storage_need // max(1, resources.num_nodes),
    }
    for region, nbytes in predictions.items():
        metrics.gauge("predicted_peak_bytes", region=region).set(
            int(nbytes)
        )


def _record_choice(metrics, config):
    """Publish the chosen knobs as ``plan_choice`` gauges (categorical
    knobs numerically encoded via :data:`JOIN_CODES` /
    :data:`PERSISTENCE_CODES`) so the regression gate can flag a plan
    flip between two runs even when every timing metric improved."""
    if not metrics.enabled:
        return
    choices = {
        "cpu": config.cpu,
        "num_partitions": config.num_partitions,
        "join": JOIN_CODES.get(config.join, -1),
        "persistence": PERSISTENCE_CODES.get(config.persistence, -1),
    }
    for knob, code in choices.items():
        metrics.gauge("plan_choice", knob=knob).set(int(code))


def _dl_memory(cpu, f_mem, downstream, m_mem):
    """Eq. 11: DL Execution Memory requirement."""
    if downstream.in_dl_system:
        return cpu * max(f_mem, m_mem)
    return cpu * f_mem


def _gpu_feasible(cpu, model_stats, downstream, resources):
    """Eq. 15: GPU memory constraint (vacuously true without a GPU)."""
    if not resources.has_gpu:
        return True
    per_replica = max(model_stats.gpu_mem_bytes, downstream.gpu_mem_bytes)
    return cpu * per_replica < resources.gpu_memory_bytes
