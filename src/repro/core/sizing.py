"""Intermediate data size estimation (Eq. 16, Eqs. 5-6, Appendix A).

Vista estimates the size of every intermediate table ``T_i`` produced
by the Staged plan from its knowledge of the CNN's feature-layer
shapes and the PD system's Tungsten-style record format:

    |T_i| = alpha_1 x n x (8 + 8 + 4 x |g_l(f̂_l(I))|) + |Tstr|   (Eq. 16)

where ``alpha_1`` is the JVM-object blowup fudge factor. From the
per-layer sizes it derives the two peak quantities the optimizer's
memory constraints use:

    s_single = max_i |T_i|                                (Eq. 5)
    s_double = max_i (|T_i| + |T_{i+1}|) - |Tstr|          (Eq. 6)

These estimates are deliberately safe *upper bounds* for deserialized
in-memory data (Figure 15 validates this against actual table sizes).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SizingReport:
    """Estimated sizes (bytes) for one workload instance."""

    layers: list
    structured_table_bytes: int
    image_table_bytes: int
    intermediate_table_bytes: dict   # layer name -> |T_i|
    s_single: int
    s_double: int


def intermediate_table_bytes(model_stats, layer, dataset_stats, alpha=2.0):
    """Eq. 16 for one feature layer (per-record form times n)."""
    flat_dim = model_stats.materialized_bytes(layer) // 4
    per_record = 8 + 8 + 4 * flat_dim
    return int(
        alpha * dataset_stats.num_records * per_record
        + dataset_stats.structured_table_bytes()
    )


def estimate_sizes(model_stats, layers, dataset_stats, alpha=2.0):
    """Build the full :class:`SizingReport` for a layer set.

    ``layers`` is ordered lowest-to-highest (the staged materialization
    order), so consecutive pairs in Eq. 6 are the tables that coexist
    while stage ``i+1`` is derived from stage ``i``.
    """
    layers = list(layers)
    if not layers:
        raise ValueError("at least one feature layer is required")
    sizes = {
        layer: intermediate_table_bytes(
            model_stats, layer, dataset_stats, alpha=alpha
        )
        for layer in layers
    }
    ordered = [sizes[layer] for layer in layers]
    s_single = max(ordered)
    if len(ordered) > 1:
        s_double = max(
            ordered[i] + ordered[i + 1] for i in range(len(ordered) - 1)
        ) - dataset_stats.structured_table_bytes()
    else:
        s_double = s_single
    return SizingReport(
        layers=layers,
        structured_table_bytes=dataset_stats.structured_table_bytes(),
        image_table_bytes=dataset_stats.image_table_bytes(),
        intermediate_table_bytes=sizes,
        s_single=int(s_single),
        s_double=int(s_double),
    )


def static_storage_need(cached_bytes, persistence, serialized_ratio,
                        alpha=2.0):
    """In-memory bytes of a cached working set on a *static* (memory-
    only, Ignite-style) storage region under a persistence format.

    Serialized data drops the JVM-object blowup (alpha) and compresses
    by the model's ratio. Shared by the optimizer's Ignite feasibility
    constraint and the cost model's storage crash check so the two can
    never disagree.
    """
    if persistence == "serialized":
        return int(cached_bytes / alpha * serialized_ratio)
    return int(cached_bytes)


def estimate_sizes_from_cnn(cnn, layers, dataset_stats, alpha=2.0):
    """Eq. 16 per-layer estimates computed from an *executable* CNN's
    actual layer shapes instead of the paper-scale roster statistics.

    This is what the tracer records next to measured intermediate
    sizes: at mini scale the roster's 227x227 shapes would be
    meaningless, but Eq. 16 itself is scale-free — per record the
    intermediate table T_i holds two 8-byte slots plus the flat float32
    feature tensor, blown up by ``alpha``, plus the structured table.
    Returns ``{layer: estimated_bytes}``.
    """
    estimates = {}
    for layer in layers:
        shape = cnn.output_shape_of(layer)
        flat_dim = 1
        for dim in shape:
            flat_dim *= dim
        per_record = 8 + 8 + 4 * flat_dim
        estimates[layer] = int(
            alpha * dataset_stats.num_records * per_record
            + dataset_stats.structured_table_bytes()
        )
    return estimates


def columnar_intermediate_bytes(cnn, layer, dataset_stats):
    """*Exact* columnar bytes of the layer's joined train table — the
    measured counterpart of :func:`estimate_sizes_from_cnn`'s Eq. 16
    upper bound.

    Under the columnar partition layout (``repro.dataflow.columnar``)
    the joined table {id, features, label, tensor} stores two int64
    scalar columns plus two float32 tensor columns, so its size is
    fully determined: ``n x (16 + 4 x (n_str + |flat|))``. Tests pin
    the traced measurement to this number bit-exactly; Eq. 16's alpha
    then reads as the estimate-to-exact safety factor.
    """
    flat_dim = 1
    for dim in cnn.output_shape_of(layer):
        flat_dim *= dim
    per_record = 16 + 4 * (
        dataset_stats.num_structured_features + flat_dim
    )
    return dataset_stats.num_records * per_record


def eager_table_bytes(model_stats, layers, dataset_stats, alpha=2.0):
    """Size of the Eager plan's all-layers-at-once table: one record
    holds the TensorList of *every* layer in L."""
    total_dim = sum(
        model_stats.materialized_bytes(layer) // 4 for layer in layers
    )
    per_record = 8 + 8 * len(list(layers)) + 4 * total_dim
    return int(
        alpha * dataset_stats.num_records * per_record
        + dataset_stats.structured_table_bytes()
    )
