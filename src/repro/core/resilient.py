"""The degrade-and-retry supervisor.

Task-level retry (``repro.dataflow.executor``) absorbs transient
failures, but a *structural* Section 4.1 crash — a memory region that
is simply too small for the chosen configuration — recurs on every
retry. :class:`ResilientRunner` recovers from those by re-planning:
on a retryable :class:`~repro.exceptions.WorkloadCrash` it applies the
paper-ordered degradation ladder, one rung per crash, and re-runs the
workload on a fresh cluster context until it succeeds or the ladder is
exhausted:

1. broadcast -> shuffle join (frees Driver and per-worker User copies
   of Tstr — Figure 10's broadcast crashes);
2. deserialized -> serialized persistence (the optimizer's own
   ``s_double`` downgrade — smaller cached intermediates);
3. Eager -> Staged -> Lazy materialization (each step caches strictly
   less at once — Figure 6's Eager crash column);
4. cpu - 1 by re-invoking the optimizer with ``cpu_max`` clamped to
   the current ``cpu`` (fewer concurrent replicas and task buffers;
   Algorithm 1 re-derives np and the memory split), raising
   :class:`~repro.exceptions.NoFeasiblePlan` once ``cpu`` hits 1.

Every step is appended to the shared
:class:`~repro.faults.retry.RecoveryLog`, which the returned
``WorkloadResult.metrics["recovery_log"]`` exposes alongside the task
retries and blacklists recorded by the dataflow engine. The cross-plan
invariant survives recovery by construction: every rung re-runs the
same logical workload, so features after any fault sequence are
bit-identical to a fault-free run.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.executor import FeatureTransferExecutor
from repro.core.plans import LogicalPlan, Materialization
from repro.dataflow.joins import BROADCAST, SHUFFLE
from repro.dataflow.partition import DESERIALIZED, SERIALIZED
from repro.exceptions import NoFeasiblePlan, WorkloadCrash
from repro.faults.retry import RecoveryLog, RetryPolicy
from repro.metrics import NULL_METRICS
from repro.observe.ledger import NULL_LEDGER
from repro.trace import NULL_TRACER


def degrade_once(config, plan, optimize_below_fn):
    """Apply the first applicable rung of the degradation ladder.

    Returns ``(config, plan, step)`` where ``step`` is a label for the
    recovery log. ``optimize_below_fn(cpu)`` must return a fresh
    :class:`~repro.core.config.VistaConfig` with ``cpu`` strictly
    below the given value (rung 4). Raises
    :class:`~repro.exceptions.NoFeasiblePlan` when nothing is left to
    degrade.
    """
    if config.join == BROADCAST:
        return (
            replace(config, join=SHUFFLE), plan,
            "join:broadcast->shuffle",
        )
    if config.persistence == DESERIALIZED:
        return (
            replace(config, persistence=SERIALIZED), plan,
            "persistence:deserialized->serialized",
        )
    if plan.materialization is Materialization.EAGER:
        return (
            config,
            LogicalPlan(Materialization.STAGED, plan.join_placement),
            "materialization:eager->staged",
        )
    if plan.materialization is Materialization.STAGED:
        return (
            config,
            LogicalPlan(Materialization.LAZY, plan.join_placement),
            "materialization:staged->lazy",
        )
    if config.cpu <= 1:
        raise NoFeasiblePlan(
            "degradation ladder exhausted: shuffle join, serialized "
            "persistence, Lazy materialization at cpu=1 still crashes; "
            "provision machines with more memory"
        )
    new_config = optimize_below_fn(config.cpu)
    return new_config, plan, f"cpu:{config.cpu}->{new_config.cpu}"


class ResilientRunner:
    """Supervises :class:`FeatureTransferExecutor` runs for a
    :class:`~repro.core.api.Vista` workload.

    Parameters
    ----------
    vista:
        The declarative workload (model, layers, data, resources); the
        supervisor reuses its optimizer and context builder.
    fault_plan / seed:
        Optional declarative :class:`~repro.faults.plan.FaultPlan` to
        inject (used by the fault suite and benchmarks); ``seed``
        makes the injection deterministic.
    injector:
        A pre-built :class:`~repro.faults.injector.FaultInjector`
        (overrides ``fault_plan``/``seed``).
    retry_policy:
        Task-level :class:`~repro.faults.retry.RetryPolicy` for the
        dataflow engine.
    max_attempts:
        Hard cap on workload attempts (the ladder is finite anyway).
    """

    def __init__(self, vista, fault_plan=None, seed=0, injector=None,
                 retry_policy=None, max_attempts=16, recovery_log=None,
                 tracer=None, metrics=None, checkpoint_store=None,
                 ledger=None):
        if injector is None and fault_plan is not None:
            from repro.faults import FaultInjector

            injector = FaultInjector(fault_plan, seed=seed)
        self.vista = vista
        self.injector = injector
        self.retry_policy = retry_policy or RetryPolicy()
        self.max_attempts = int(max_attempts)
        self.recovery_log = (
            recovery_log if recovery_log is not None else RecoveryLog()
        )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.ledger = ledger if ledger is not None else NULL_LEDGER
        if self.ledger.enabled:
            # Recovery actions are barrier events in the run ledger:
            # every retry/resume/degrade step streams out durably.
            self.recovery_log.sink = self.ledger
        self.checkpoint_store = checkpoint_store
        # Valid-partition count at the last resume decision: resume is
        # chosen only while the store keeps *growing* between crashes,
        # which guarantees the resume loop terminates.
        self._resume_watermark = None

    # ------------------------------------------------------------------
    def run(self, plan=None, premat_layer=None, feature_store=None):
        """Run the workload, degrading and retrying until it succeeds.

        Returns the successful :class:`~repro.core.executor.
        WorkloadResult` with ``metrics["recovery_log"]`` holding every
        retry, blacklist, and degradation step, or raises the first
        non-retryable error (:class:`NoFeasiblePlan`, a non-retryable
        :class:`WorkloadCrash`, or the last crash once
        ``max_attempts`` is exhausted).
        """
        from repro.cnn.zoo import build_model

        vista = self.vista
        recovery = self.recovery_log
        tracer = self.tracer
        metrics = self.metrics
        if self.injector is not None and self.injector.recovery_log is None:
            self.injector.recovery_log = recovery
        if (self.injector is not None and tracer.enabled
                and tracer.clock is None):
            tracer.clock = self.injector.clock
        if (self.injector is not None and metrics.enabled
                and metrics.clock is None):
            metrics.clock = self.injector.clock
        config = vista._config or vista.optimize(
            tracer=tracer if tracer.enabled else None,
            metrics=metrics if metrics.enabled else None,
        )
        plan = plan or vista.plan
        cnn = build_model(
            vista.model_name, profile=vista.model_profile,
            seed=vista.model_seed,
        )
        attempt = 0
        while True:
            attempt += 1
            context = vista.build_context(config)
            context.recovery_log = recovery
            context.retry_policy = self.retry_policy
            if self.injector is not None:
                context.fault_injector = self.injector
            executor = FeatureTransferExecutor(
                context, cnn, vista.dataset, vista.layers, config,
                downstream_fn=vista.downstream_fn,
                feature_store=feature_store,
                tracer=tracer if tracer.enabled else None,
                metrics=metrics if metrics.enabled else None,
                checkpoint_store=self.checkpoint_store,
                ledger=self.ledger if self.ledger.enabled else None,
            )
            try:
                try:
                    with tracer.span(f"attempt:{attempt}", plan=plan.label,
                                     cpu=config.cpu, join=config.join,
                                     persistence=config.persistence):
                        result = executor.run(plan, premat_layer=premat_layer)
                finally:
                    # Every attempt abandons its context on the way
                    # out: sweep the backend so a crashed parallel
                    # attempt cannot leak shared memory (a no-op for
                    # the serial backend and for clean exits, which
                    # unlink per wave).
                    context.exec_backend.close()
            except WorkloadCrash as crash:
                if attempt >= self.max_attempts:
                    raise
                if self._should_resume():
                    # Resume-first: the store grew since the last
                    # decision, so re-running the *same* plan/config on
                    # a fresh context restores the checkpointed
                    # partitions and recomputes only the rest. Fresh
                    # workers also model replacement machines, which is
                    # why even ClusterExhausted is resumable here.
                    restorable = self.checkpoint_store.valid_partition_count()
                    recovery.record(
                        "resume", attempt=attempt,
                        crash=type(crash).__name__,
                        restorable_partitions=restorable,
                        plan=plan.label, cpu=config.cpu,
                        sim_time_s=self._sim_time(),
                    )
                    tracer.event(
                        "resume", attempt=attempt,
                        crash=type(crash).__name__,
                        restorable_partitions=restorable,
                    )
                    metrics.counter(
                        "resumes_total", crash=type(crash).__name__,
                    ).inc()
                    continue
                if not crash.retryable:
                    raise
                config, plan, step = degrade_once(
                    config, plan, self._optimize_below
                )
                # A degraded plan/config lands in a fresh checkpoint
                # namespace (new fingerprint): reset the progress
                # watermark so resume gets a clean first chance there.
                self._resume_watermark = None
                recovery.record(
                    "degrade", attempt=attempt,
                    crash=type(crash).__name__, step=step,
                    plan=plan.label, cpu=config.cpu, join=config.join,
                    persistence=config.persistence,
                    sim_time_s=self._sim_time(),
                )
                tracer.event(
                    "degrade", attempt=attempt,
                    crash=type(crash).__name__, step=step,
                    plan=plan.label, cpu=config.cpu, join=config.join,
                    persistence=config.persistence,
                )
                metrics.counter(
                    "degrades_total",
                    step=step.split(":", 1)[0],
                    crash=type(crash).__name__,
                ).inc()
                continue
            result.metrics["recovery_log"] = [dict(e) for e in recovery]
            result.metrics["recovery_attempts"] = attempt
            result.metrics["recovered_plan"] = plan.label
            return result

    # ------------------------------------------------------------------
    def _should_resume(self):
        """Resume-first policy: retry the same plan/config when the
        checkpoint store made *progress* since the last resume
        decision. No store, an unbound store (crash before the first
        stage), or a stalled store (a crash the checkpoints cannot
        outrun — structural memory overflow at stage one) all fall
        through to the degradation ladder."""
        store = self.checkpoint_store
        if store is None or store.fingerprint is None:
            return False
        valid = store.valid_partition_count()
        watermark = (
            self._resume_watermark
            if self._resume_watermark is not None else 0
        )
        if valid <= watermark:
            return False
        self._resume_watermark = valid
        return True

    def _optimize_below(self, cpu):
        """Rung 4: re-invoke Algorithm 1 with ``cpu_max`` clamped so
        the winning candidate has strictly lower parallelism."""
        from repro.core.optimizer import optimize

        vista = self.vista
        defaults = replace(vista.defaults, cpu_max=int(cpu))
        return optimize(
            vista.model_stats, vista.layers, vista.dataset_stats,
            vista.resources, downstream=vista.downstream_spec,
            defaults=defaults, backend=vista.backend,
        )

    def _sim_time(self):
        return self.injector.clock.now if self.injector is not None else 0.0

    def __repr__(self):
        return (
            f"<ResilientRunner {self.vista.model_name} "
            f"max_attempts={self.max_attempts}>"
        )
