"""Workload crash taxonomy for the feature transfer workload.

Section 4.1 of the paper enumerates four memory-related crash scenarios
that arise when CNN inference runs inside a parallel dataflow system.
Each scenario gets its own exception type so tests and benchmarks can
assert *which* failure mode was triggered, mirroring the "X" (crash)
cells in Figures 6, 7, 10, and 11 of the paper.
"""


class VistaError(Exception):
    """Base class for all errors raised by this library."""


class WorkloadCrash(VistaError):
    """A workload crash: the execution died mid-flight.

    This models an application being killed by the OS, a JVM
    OutOfMemoryError, or a driver failure, as described in Section 4.1.
    """


class DLExecutionMemoryExceeded(WorkloadCrash):
    """Crash scenario (1): DL Execution Memory blowup.

    Serialized CNN formats underestimate in-memory footprints; each
    execution thread replicates the model, so ``cpu * |f|_mem`` can
    exceed the memory left outside the PD system's heap, and the OS
    kills the application.
    """


class UserMemoryExceeded(WorkloadCrash):
    """Crash scenario (2): insufficient User Memory.

    UDF threads share User Memory for the serialized CNN, feature-layer
    TensorLists, and the downstream model; exceeding it raises an
    out-of-memory error inside the PD system.
    """


class ExecutionMemoryExceeded(WorkloadCrash):
    """Crash scenario (3): a data partition too large for Core/User
    Execution Memory during join processing or MapPartition UDFs."""


class DriverMemoryExceeded(WorkloadCrash):
    """Crash scenario (4): the driver ran out of memory while
    broadcasting the CNN or collecting partial results."""


class StorageMemoryExceeded(WorkloadCrash):
    """Purely in-memory storage (Ignite-style, no disk spills) ran out
    of room for intermediate tables."""


class NoFeasiblePlan(VistaError):
    """Raised by the optimizer (Algorithm 1, line 18) when no value of
    ``cpu`` satisfies all memory constraints; the user must provision
    machines with more memory."""


class ShapeError(VistaError):
    """A tensor is not shape-compatible with a TensorOp (Def. 3.3)."""


class InvalidLayerError(VistaError):
    """A requested layer index is outside the CNN's layer range or not
    an exposed feature layer of the roster model."""
