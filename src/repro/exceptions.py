"""Workload crash taxonomy for the feature transfer workload.

Section 4.1 of the paper enumerates four memory-related crash scenarios
that arise when CNN inference runs inside a parallel dataflow system.
Each scenario gets its own exception type so tests and benchmarks can
assert *which* failure mode was triggered, mirroring the "X" (crash)
cells in Figures 6, 7, 10, and 11 of the paper.
"""


class VistaError(Exception):
    """Base class for all errors raised by this library.

    ``retryable`` says whether the :class:`~repro.core.resilient.
    ResilientRunner` supervisor may re-plan (degradation ladder) and
    re-run the workload after catching the error; ``transient`` says
    whether the dataflow engine may simply retry the *task* in place
    (lineage recomputation with backoff) without re-planning.
    """

    retryable = False
    transient = False


class WorkloadCrash(VistaError):
    """A workload crash: the execution died mid-flight.

    This models an application being killed by the OS, a JVM
    OutOfMemoryError, or a driver failure, as described in Section 4.1.
    Memory crashes are retryable: the supervisor's degradation ladder
    (shuffle join, serialized persistence, lazier materialization,
    lower ``cpu``) shrinks the footprint that caused them.
    """

    retryable = True


class DLExecutionMemoryExceeded(WorkloadCrash):
    """Crash scenario (1): DL Execution Memory blowup.

    Serialized CNN formats underestimate in-memory footprints; each
    execution thread replicates the model, so ``cpu * |f|_mem`` can
    exceed the memory left outside the PD system's heap, and the OS
    kills the application.
    """


class UserMemoryExceeded(WorkloadCrash):
    """Crash scenario (2): insufficient User Memory.

    UDF threads share User Memory for the serialized CNN, feature-layer
    TensorLists, and the downstream model; exceeding it raises an
    out-of-memory error inside the PD system.
    """


class ExecutionMemoryExceeded(WorkloadCrash):
    """Crash scenario (3): a data partition too large for Core/User
    Execution Memory during join processing or MapPartition UDFs."""


class DriverMemoryExceeded(WorkloadCrash):
    """Crash scenario (4): the driver ran out of memory while
    broadcasting the CNN or collecting partial results."""


class StorageMemoryExceeded(WorkloadCrash):
    """Purely in-memory storage (Ignite-style, no disk spills) ran out
    of room for intermediate tables."""


class TransientTaskOOM(UserMemoryExceeded):
    """A *transient* per-task out-of-memory failure: one task's
    footprint spiked (mis-predicted record sizes, allocator
    fragmentation) but the condition is not structural, so retrying
    the task in place — possibly on another worker — can succeed."""

    transient = True


class WorkerLost(WorkloadCrash):
    """A worker node died mid-wave (process kill, machine loss).

    The in-flight wave's results are lost with it; the cluster
    survives by blacklisting the worker and failing its partitions
    over to live workers, so the dataflow engine treats this as a
    transient, task-level failure rather than a workload crash.
    """

    transient = True

    def __init__(self, message="", worker_id=None):
        super().__init__(message or f"worker {worker_id} lost")
        self.worker_id = worker_id


class ClusterExhausted(WorkloadCrash):
    """Every worker in the cluster has been lost or blacklisted; no
    re-planning can recover without new machines."""

    retryable = False


class TaskFailure(VistaError):
    """A partition task failed with structured scheduling context.

    Raised by :func:`repro.dataflow.executor.run_partition_tasks` when
    a task fails and cannot (or may no longer) be retried, carrying the
    partition index, the worker it ran on, and the attempt number so
    the retry layer and the supervisor see *where* the failure
    happened instead of a bare exception.
    """

    def __init__(self, partition_index, worker_id, attempt, cause=None):
        self.partition_index = partition_index
        self.worker_id = worker_id
        self.attempt = attempt
        self.cause = cause
        detail = f": {cause}" if cause is not None else ""
        super().__init__(
            f"task for partition {partition_index} failed on worker "
            f"{worker_id} (attempt {attempt}){detail}"
        )

    @property
    def retryable(self):  # mirrors the underlying cause
        return getattr(self.cause, "retryable", False)

    @property
    def transient(self):
        return getattr(self.cause, "transient", False)


class CheckpointIntegrityError(VistaError):
    """A durable checkpoint failed verification: a partition payload's
    SHA-256 digest does not match its manifest entry, the manifest
    itself is torn (truncated/unparseable), or a manifested file is
    missing. Always raised ``from`` the underlying cause (if any) so
    the original traceback survives into the recovery log; the
    checkpoint store treats the entry as unusable and recovery falls
    back to lineage recompute — corrupt state is never silently
    ingested."""

    def __init__(self, message, stage=None, partition=None):
        super().__init__(message)
        self.stage = stage
        self.partition = partition


class NoFeasiblePlan(VistaError):
    """Raised by the optimizer (Algorithm 1, line 18) when no value of
    ``cpu`` satisfies all memory constraints; the user must provision
    machines with more memory. Not retryable: the degradation ladder
    is exhausted by definition."""


class ShapeError(VistaError):
    """A tensor is not shape-compatible with a TensorOp (Def. 3.3)."""


class InvalidLayerError(VistaError):
    """A requested layer index is outside the CNN's layer range or not
    an exposed feature layer of the roster model."""
