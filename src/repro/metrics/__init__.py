"""Time-series metrics: counters, gauges, and histograms sampled
against the shared simulated clock — the state-over-time counterpart
of the span tracer. See :mod:`repro.metrics.registry`."""

from repro.metrics.registry import (
    Counter,
    Gauge,
    Histogram,
    METRICS_SCHEMA,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
    find_series,
    merge_exports,
    series_last,
    series_peak,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetrics",
    "find_series",
    "merge_exports",
    "series_last",
    "series_peak",
]
