"""Time-series metrics for Vista runs.

Where the tracer (:mod:`repro.trace`) answers "where did the time go"
with span *durations*, this registry answers "what was the state over
time": per-worker memory occupancy, cache residency, task occupancy —
the Figure 4A quantities that decide whether a run crashes, spills, or
sails. A :class:`MetricsRegistry` holds three instrument kinds:

- :class:`Counter` — monotonically increasing totals (tasks run, bytes
  spilled, retries). Each increment appends a ``(sim_time, tick,
  running_total)`` sample, so counters export as cumulative series.
- :class:`Gauge` — a level that moves both ways (region occupancy,
  wave task occupancy). Each ``set`` appends a sample; ``peak`` and
  ``low`` watermarks are tracked exactly even if old samples are
  compacted away.
- :class:`Histogram` — value distributions (join build-side sizes, LRU
  residency ages) as bucket counts plus count/sum/min/max.

Two timestamps per sample, deliberately: ``sim_time`` comes from the
shared :class:`~repro.faults.clock.SimulatedClock` (deterministic, but
static in fault-free runs), and ``tick`` is a registry-global sequence
number that orders *every* sample across all instruments. Waterline
renderings use ticks as their logical time axis, so timelines are
deterministic and meaningful even when the simulated clock never
advances.

The module-level :data:`NULL_METRICS` mirrors ``NULL_TRACER``: every
instrument lookup returns one shared no-op instrument, so
un-instrumented runs pay only an attribute lookup per sample point.
"""

from __future__ import annotations

import json

#: Version tag of the exported metrics block.
METRICS_SCHEMA = "metrics/v1"

#: Default sample cap per series; beyond it the series is compacted
#: pairwise (gauges keep each pair's extremum, counters the later
#: total), halving resolution while preserving the waterline shape.
MAX_SAMPLES = 4096


def _label_key(labels):
    return tuple(sorted(labels.items()))


class _Instrument:
    """Shared state of one named, labelled metric series."""

    kind = "instrument"

    def __init__(self, registry, name, labels):
        self.registry = registry
        self.name = name
        self.labels = dict(labels)
        self.samples = []  # [sim_time, tick, value]

    def _append(self, value, crest=False):
        # Hot path (every charge/release/inc lands here): the clock
        # read and tick bump are inlined rather than going through
        # _now()/_next_tick() — the call overhead alone is measurable
        # against the 5% metrics-overhead budget bench_kernels gates.
        registry = self.registry
        clock = registry.clock
        registry._tick += 1
        self.samples.append([
            clock.now if clock is not None else 0.0,
            registry._tick,
            value,
        ])
        if len(self.samples) > registry.max_samples:
            self._compact()
        sink = registry.sink
        if sink is not None:
            # Throttled: the first sample of a series and every
            # ``sink_every``-th after it stream into the run ledger —
            # enough for live counter tracks without paying a ledger
            # line per sample against the 5% overhead budget. The one
            # exception is a ``crest`` sample (a gauge setting a new
            # peak/low watermark): those always stream, so a mid-run
            # memory spike that falls between throttle points still
            # survives into the ledger and the history summaries.
            # Crest emits are self-bounding — each one requires a
            # strictly new watermark, so a series pays at most one
            # extra line per new extreme, not one per sample.
            count = len(self.samples)
            if crest or count == 1 or count % registry.sink_every == 0:
                sink.emit("metric", metric=self.name,
                          labels=self.labels, value=value)

    def _compact(self):
        pairs = zip(self.samples[::2], self.samples[1::2])
        compacted = [self._pick(a, b) for a, b in pairs]
        if len(self.samples) % 2:
            # an odd tail (always the just-appended sample) survives
            compacted.append(self.samples[-1])
        self.samples = compacted

    def _pick(self, first, second):
        return second

    def to_dict(self):
        return {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
            "samples": [list(sample) for sample in self.samples],
        }

    def __repr__(self):
        return (
            f"<{type(self).__name__} {self.name}{self.labels}: "
            f"{len(self.samples)} samples>"
        )


class Counter(_Instrument):
    """A monotonically increasing total, exported as a cumulative
    series."""

    kind = "counter"

    def __init__(self, registry, name, labels):
        super().__init__(registry, name, labels)
        self.total = 0

    def inc(self, value=1):
        self.total += value
        self._append(self.total)
        return self.total

    def to_dict(self):
        payload = super().to_dict()
        payload["total"] = self.total
        return payload


class Gauge(_Instrument):
    """A level that moves both ways, with exact high/low watermarks."""

    kind = "gauge"

    def __init__(self, registry, name, labels):
        super().__init__(registry, name, labels)
        self.value = 0
        self.peak = None
        self.low = None

    def set(self, value):
        self.value = value
        crest = False
        if self.peak is None or value > self.peak:
            self.peak = value
            crest = True
        if self.low is None or value < self.low:
            self.low = value
            crest = True
        self._append(value, crest=crest)
        return value

    def add(self, delta):
        return self.set(self.value + delta)

    def _pick(self, first, second):
        # Keep the extremum so compaction never flattens a waterline
        # crest; ties keep the later sample (current level survives).
        return first if abs(first[2]) > abs(second[2]) else second

    def to_dict(self):
        payload = super().to_dict()
        payload.update({
            "last": self.value,
            "peak": self.peak,
            "low": self.low,
        })
        return payload


#: Default histogram bucket boundaries: powers of 4 cover bytes and
#: seconds alike across the mini-to-paper scale range.
DEFAULT_BUCKETS = tuple(4 ** exp for exp in range(16))


class Histogram(_Instrument):
    """A value distribution as cumulative-style bucket counts."""

    kind = "histogram"

    def __init__(self, registry, name, labels, buckets=None):
        super().__init__(registry, name, labels)
        self.buckets = tuple(sorted(buckets or DEFAULT_BUCKETS))
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0
        self.min = None
        self.max = None

    def observe(self, value):
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for position, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[position] += 1
                break
        else:
            self.bucket_counts[-1] += 1
        self._append(value)
        return value

    def observe_many(self, values):
        """Bulk :meth:`observe` for deferred flushes.

        Updates count/sum/min/max and the bucket counts exactly as a
        loop of ``observe`` calls would, but appends a single
        time-series sample (the batch's last value) — the values were
        collected earlier, so per-value flush-time timestamps would be
        fiction anyway, and hot paths that defer recording (the
        executor's per-operator timer) shouldn't pay a sample append
        per value when they finally flush.
        """
        from bisect import bisect_left

        if not values:
            return None
        buckets = self.buckets
        counts = self.bucket_counts
        for value in values:
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            # bisect_left finds the first bound >= value, i.e. the
            # same bucket the linear scan in ``observe`` picks; past
            # the last bound it lands on the overflow slot.
            counts[bisect_left(buckets, value)] += 1
        self._append(values[-1])
        return values[-1]

    def to_dict(self):
        payload = super().to_dict()
        payload.update({
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": [
                [bound, count]
                for bound, count in zip(self.buckets, self.bucket_counts)
            ] + [["inf", self.bucket_counts[-1]]],
        })
        return payload


class MetricsRegistry:
    """Collects time-series instruments for one (or several) runs.

    Parameters
    ----------
    clock:
        Optional shared :class:`~repro.faults.clock.SimulatedClock`;
        with a fault injector attached the cluster context shares its
        clock here, so samples carry deterministic simulated
        timestamps. Without one, sim timestamps stay 0 and the
        registry-global tick orders samples.
    base_labels:
        Labels merged into every instrument created through this
        registry (benchmarks use it to tag series per scenario).
    """

    enabled = True

    def __init__(self, clock=None, base_labels=None,
                 max_samples=MAX_SAMPLES):
        self.clock = clock
        self.base_labels = dict(base_labels) if base_labels else {}
        self.max_samples = int(max_samples)
        #: Optional :class:`~repro.observe.ledger.RunLedger`: when set
        #: (via ``ClusterContext.attach_ledger``), samples stream into
        #: the ledger throttled to one in :attr:`sink_every` per
        #: series (plus each series' first sample).
        self.sink = None
        self.sink_every = 64
        self._instruments = {}
        self._tick = 0

    # ------------------------------------------------------------------
    def _now(self):
        return self.clock.now if self.clock is not None else 0.0

    def _next_tick(self):
        self._tick += 1
        return self._tick

    def _get(self, cls, name, labels, **extra):
        if self.base_labels:
            labels = {**self.base_labels, **labels}
        key = (cls.kind, name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._instruments[key] = cls(
                self, name, labels, **extra
            )
        return instrument

    def counter(self, name, **labels):
        return self._get(Counter, name, labels)

    def gauge(self, name, **labels):
        return self._get(Gauge, name, labels)

    def histogram(self, name, buckets=None, **labels):
        return self._get(Histogram, name, labels, buckets=buckets)

    # ------------------------------------------------------------------
    def instruments(self, name=None, **labels):
        """All instruments, optionally filtered by name and a label
        subset."""
        matches = []
        for instrument in self._instruments.values():
            if name is not None and instrument.name != name:
                continue
            if any(instrument.labels.get(k) != v for k, v in labels.items()):
                continue
            matches.append(instrument)
        return matches

    def counter_totals(self):
        """``{(name, label_pairs): total}`` snapshot of every counter.

        ``label_pairs`` is the sorted label tuple (base labels already
        merged), so re-incrementing through ``counter(name,
        **dict(label_pairs))`` addresses the same series. The process
        backend snapshots this in the forked child before and after the
        task and ships only the deltas back to the driver registry.
        """
        return {
            (name, label_key): instrument.total
            for (kind, name, label_key), instrument
            in self._instruments.items()
            if kind == "counter"
        }

    def export(self):
        """JSON-safe dict of every series, ready for the ``metrics``
        block of a ``trace/v2`` envelope."""
        return {
            "schema": METRICS_SCHEMA,
            "ticks": self._tick,
            "series": [
                instrument.to_dict()
                for instrument in self._instruments.values()
            ],
        }

    def to_json(self, indent=2):
        return json.dumps(self.export(), indent=indent, sort_keys=True,
                          default=str)

    def __repr__(self):
        return (
            f"<MetricsRegistry {len(self._instruments)} series, "
            f"tick={self._tick}>"
        )


def merge_exports(*exports):
    """Concatenate several registry exports into one ``metrics`` block
    (benchmarks export one registry per scenario, tagged via
    ``base_labels``, and commit the merged block)."""
    merged = {"schema": METRICS_SCHEMA, "ticks": 0, "series": []}
    for export in exports:
        if not export:
            continue
        merged["ticks"] = max(merged["ticks"], export.get("ticks", 0))
        merged["series"].extend(export.get("series", ()))
    return merged


def find_series(source, name, **labels):
    """Series dicts matching ``name`` and a label subset.

    ``source`` is a registry, a registry export, or a full
    ``trace/v2`` envelope (its ``metrics`` block is searched).
    """
    if hasattr(source, "export"):
        source = source.export()
    if source is None:
        return []
    if "series" not in source and "metrics" in source:
        source = source["metrics"] or {}
    matches = []
    for series in source.get("series", ()):
        if series.get("name") != name:
            continue
        series_labels = series.get("labels", {})
        if any(series_labels.get(k) != v for k, v in labels.items()):
            continue
        matches.append(series)
    return matches


def series_peak(series):
    """Highest value a series dict reached (gauges report their exact
    ``peak`` watermark; counters their total; histograms their max)."""
    if series is None:
        return None
    for key in ("peak", "total", "max"):
        if series.get(key) is not None:
            return series[key]
    samples = series.get("samples") or ()
    return max((sample[2] for sample in samples), default=None)


def series_last(series):
    """Final value of a series dict (gauges export it as ``last``,
    counters as ``total``; otherwise the last sample). This is what
    plan-choice gauges and other end-state levels are compared on."""
    if series is None:
        return None
    for key in ("last", "total"):
        if series.get(key) is not None:
            return series[key]
    samples = series.get("samples") or ()
    return samples[-1][2] if samples else None


class _NullInstrument:
    """Shared no-op stand-in for every instrument kind."""

    __slots__ = ()
    name = "null"
    labels = {}
    samples = ()
    total = 0
    value = 0
    peak = None
    low = None
    count = 0

    def inc(self, value=1):
        pass

    def set(self, value):
        pass

    def add(self, delta):
        pass

    def observe(self, value):
        pass

    def observe_many(self, values):
        pass

    def to_dict(self):
        return {}

    def __repr__(self):
        return "<NullInstrument>"


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Disabled registry: every instrument is a shared no-op.
    Instrumented code can test ``metrics.enabled`` before computing
    anything expensive for a sample."""

    enabled = False
    clock = None
    base_labels = {}
    sink = None

    def counter(self, name, **labels):
        return _NULL_INSTRUMENT

    def gauge(self, name, **labels):
        return _NULL_INSTRUMENT

    def histogram(self, name, buckets=None, **labels):
        return _NULL_INSTRUMENT

    def instruments(self, name=None, **labels):
        return []

    def export(self):
        return None

    def __repr__(self):
        return "<NullMetrics>"


#: The process-wide disabled registry every layer defaults to.
NULL_METRICS = NullMetrics()
