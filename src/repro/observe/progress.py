"""The live progress monitor: predicted-vs-observed stages and ETA.

Vista's whole pitch is pricing a run *before* it executes (Algorithm 1
over the Eq. 9–16 cost model). This module closes the loop while the
run is in flight: :func:`predict_stage_plan` turns the cost model's
runtime breakdown into an ordered list of stages the executor will
emit — each with predicted seconds — and :class:`ProgressState`
consumes the run ledger's events live, marking stages done as their
spans close and estimating time-to-completion.

The ETA is *online-calibrated*: raw cost-model seconds are paper-scale
absolutes that can drift far from a mini-scale container run (the
calibration bench gates that drift at 25×), but the *relative* stage
weights track the workload shape. So the ETA scales the predicted
remaining seconds by the observed/predicted ratio over the stages
already finished::

    eta = (observed_done / predicted_done) × predicted_remaining

which converges on the true remaining time as stages complete — the
predicted-vs-observed progress bar doubles as an online calibration
measurement (``BENCH_observe.json`` records how tight it is at the
half-way point).
"""

from __future__ import annotations

from repro.core.plans import JoinPlacement, Materialization


class Stage:
    """One predicted stage of a run."""

    __slots__ = ("key", "matcher", "predicted_s",
                 "done", "observed_s", "end_wall_s")

    def __init__(self, key, matcher, predicted_s):
        self.key = key
        self.matcher = matcher
        self.predicted_s = float(predicted_s)
        self.done = False
        self.observed_s = None
        self.end_wall_s = None

    def matches(self, span_name):
        return (span_name == self.matcher
                or span_name.startswith(self.matcher + ":"))

    def to_dict(self):
        return {"key": self.key, "matcher": self.matcher,
                "predicted_s": round(self.predicted_s, 6)}

    def __repr__(self):
        state = "done" if self.done else "pending"
        return f"<Stage {self.key}: {self.predicted_s:.3f}s {state}>"


class StagePlan:
    """The ordered stage list one run is expected to execute."""

    def __init__(self, stages, plan_label=None):
        self.stages = list(stages)
        self.plan_label = plan_label

    @property
    def total_predicted_s(self):
        return sum(stage.predicted_s for stage in self.stages)

    def to_list(self):
        return [stage.to_dict() for stage in self.stages]

    @classmethod
    def from_list(cls, entries, plan_label=None):
        return cls(
            [Stage(e["key"], e["matcher"], e["predicted_s"])
             for e in entries],
            plan_label=plan_label,
        )

    def __len__(self):
        return len(self.stages)

    def __repr__(self):
        return (f"<StagePlan {self.plan_label or '?'}: "
                f"{len(self.stages)} stages, "
                f"{self.total_predicted_s:.2f}s predicted>")


def _stage_sequence(plan, layers):
    """The ordered ``(key, matcher, weight_bucket)`` triples the
    executor's span stream will produce for a logical plan.
    ``weight_bucket`` names the cost-model breakdown bucket the stage
    draws its predicted seconds from."""
    after_join = plan.join_placement is JoinPlacement.AFTER_JOIN
    sequence = [("read", "read", "read")]
    if plan.materialization is Materialization.EAGER:
        if after_join:
            sequence.append(("join", "join", "join"))
            sequence.append(
                ("inference", "inference:eager", "inference:all")
            )
        else:
            sequence.append(
                ("inference", "inference:eager", "inference:all")
            )
            sequence.append(("join", "join", "join"))
        for layer in layers:
            sequence.append((f"train:{layer}", f"train:{layer}", "train"))
        return sequence
    # Lazy and Staged share the stage order; only the per-layer
    # inference weights differ (full path vs incremental hop).
    if after_join:
        sequence.append(("join", "join", "join"))
    for layer in layers:
        sequence.append(
            (f"inference:{layer}", f"inference:{layer}",
             f"inference:{layer}")
        )
        if not after_join:
            sequence.append((f"join:{layer}", "join", "join"))
        sequence.append((f"train:{layer}", f"train:{layer}", "train"))
    return sequence


def predict_stage_plan(model_stats, layers, dataset_stats, plan, config,
                       resources, backend="spark"):
    """Build the :class:`StagePlan` for a workload from the cost
    model: Eq. 9–15 stage seconds distributed over the span sequence
    the executor will emit."""
    from repro.costmodel import estimate_runtime, vista_setup
    from repro.costmodel.cnn_cost import per_layer_inference_flops
    from repro.explain.whatif import cluster_from_resources

    layers = list(layers)
    setup = vista_setup(config, backend=backend)
    cluster = cluster_from_resources(resources)
    breakdown = None
    try:
        report = estimate_runtime(
            model_stats, layers, dataset_stats, plan, setup, cluster
        )
        if not report.crashed:
            breakdown = dict(report.breakdown)
    except Exception:
        breakdown = None
    flops = per_layer_inference_flops(
        model_stats, layers, dataset_stats.num_records,
        plan.materialization,
    )
    total_flops = sum(flops.values()) or 1.0
    if breakdown is None:
        # The cost model predicts a crash (or cannot price the plan):
        # fall back to FLOPs-proportional weights with nominal shares
        # for the non-inference stages, so progress still renders.
        inference_total = 1.0
        breakdown = {"read": 0.05, "join": 0.05, "train": 0.25,
                     "inference": inference_total}
    sequence = _stage_sequence(plan, layers)
    join_stages = sum(1 for _, _, b in sequence if b == "join") or 1
    train_stages = sum(1 for _, _, b in sequence if b == "train") or 1
    inference_total = breakdown.get("inference", 0.0)
    weights = []
    for key, matcher, bucket in sequence:
        if bucket == "read":
            weight = breakdown.get("read", 0.0)
        elif bucket == "join":
            weight = breakdown.get("join", 0.0) / join_stages
        elif bucket == "train":
            weight = breakdown.get("train", 0.0) / train_stages
        elif bucket == "inference:all":
            weight = inference_total
        else:  # inference:<layer>
            layer = bucket.split(":", 1)[1]
            weight = inference_total * flops.get(layer, 0.0) / total_flops
        weights.append(weight)
    # Spill/serde/overhead seconds have no span of their own: spread
    # them proportionally so stage weights sum to the predicted total.
    stage_total = sum(weights)
    full_total = sum(breakdown.values())
    if stage_total > 0 and full_total > stage_total:
        scale = full_total / stage_total
        weights = [w * scale for w in weights]
    floor = max(stage_total, 1e-9) * 1e-4
    stages = [
        Stage(key, matcher, max(weight, floor))
        for (key, matcher, _), weight in zip(sequence, weights)
    ]
    return StagePlan(stages, plan_label=plan.label)


class ProgressState:
    """Consumes ledger events and tracks stage completion and ETA."""

    def __init__(self, stage_plan):
        self.plan = stage_plan
        self.started_wall_s = 0.0
        self.last_wall_s = 0.0
        #: intra-stage progress: committed tasks of the stage in flight
        self.current_tasks_total = 0
        self.current_tasks_done = 0
        self.run_ended = False
        self.run_status = None
        #: ``(wall_s, fraction, eta_s, stage_key)`` snapshots taken at
        #: every stage completion — what the ETA bench reads back.
        self.snapshots = []

    # ------------------------------------------------------------------
    def on_event(self, event):
        """Feed one ledger event; returns the stage just completed (a
        :class:`Stage`) when the event closed one, else None."""
        kind = event.get("kind")
        wall = float(event.get("wall_s") or 0.0)
        self.last_wall_s = max(self.last_wall_s, wall)
        if kind == "stage_tasks":
            self.current_tasks_total = int(event.get("partitions") or 0)
            self.current_tasks_done = 0
            return None
        if kind == "task_commit":
            self.current_tasks_done += 1
            return None
        if kind == "run_end":
            self.run_ended = True
            self.run_status = event.get("status")
            return None
        if kind != "span_end":
            return None
        stage = self.next_stage()
        if stage is None or not stage.matches(event.get("name", "")):
            return None
        stage.done = True
        stage.observed_s = float(
            event.get("span_s") if event.get("span_s") is not None
            else 0.0
        )
        stage.end_wall_s = wall
        self.current_tasks_total = 0
        self.current_tasks_done = 0
        self.snapshots.append(
            (wall, self.fraction(), self.eta_s(), stage.key)
        )
        return stage

    # Ledger listeners are plain callables.
    __call__ = on_event

    # ------------------------------------------------------------------
    def next_stage(self):
        for stage in self.plan.stages:
            if not stage.done:
                return stage
        return None

    def stages_done(self):
        return sum(1 for stage in self.plan.stages if stage.done)

    def _partial(self):
        """Fraction of the in-flight stage completed (task commits)."""
        if self.current_tasks_total <= 0:
            return 0.0
        return min(
            1.0, self.current_tasks_done / self.current_tasks_total
        )

    def fraction(self):
        """Predicted-weight fraction of the run completed, in [0, 1]."""
        total = self.plan.total_predicted_s
        if total <= 0:
            done = self.stages_done()
            return done / len(self.plan) if len(self.plan) else 1.0
        done_weight = sum(
            stage.predicted_s for stage in self.plan.stages if stage.done
        )
        current = self.next_stage()
        if current is not None:
            done_weight += current.predicted_s * self._partial()
        return min(1.0, done_weight / total)

    def calibration_ratio(self):
        """Observed/predicted seconds over completed stages (1.0 until
        the first stage completes) — the global online calibration
        factor."""
        observed = sum(
            stage.observed_s or 0.0
            for stage in self.plan.stages if stage.done
        )
        predicted = sum(
            stage.predicted_s
            for stage in self.plan.stages if stage.done
        )
        if predicted <= 0 or observed <= 0:
            return 1.0
        return observed / predicted

    @staticmethod
    def _bucket(stage):
        return stage.key.split(":", 1)[0]

    def bucket_ratios(self):
        """Observed/predicted calibration per stage *kind* (read,
        join, inference, train). The cost model's relative weights can
        drift differently per kind at mini scale (paper-scale train
        iterations vs a toy logistic regression), but per-layer loops
        repeat the same kinds — so the already-finished ``train:fc7``
        prices the pending ``train:fc8`` far better than any global
        ratio can."""
        observed = {}
        predicted = {}
        for stage in self.plan.stages:
            if not stage.done:
                continue
            bucket = self._bucket(stage)
            observed[bucket] = (
                observed.get(bucket, 0.0) + (stage.observed_s or 0.0)
            )
            predicted[bucket] = (
                predicted.get(bucket, 0.0) + stage.predicted_s
            )
        return {
            bucket: observed[bucket] / predicted[bucket]
            for bucket in observed
            if predicted.get(bucket, 0.0) > 0 and observed[bucket] > 0
        }

    def _bucket_models(self):
        """Per-bucket estimators fitted online from completed stages:
        ``bucket -> ("affine", intercept, slope) | ("ratio", r, None)``.

        A pure observed/predicted ratio breaks when predictions inside
        a bucket span orders of magnitude but observed cost is flat —
        mini-scale inference is fixed-overhead-bound, so ``conv5``'s
        huge FLOP prediction next to ``fc8``'s tiny one poisons a
        shared ratio. With two or more distinct predicted values the
        least-squares affine fit ``observed = a + b * predicted``
        separates the fixed per-stage cost (intercept) from the truly
        workload-proportional part (slope); buckets with identical
        predictions (the train stages) keep the plain ratio."""
        by_bucket = {}
        for stage in self.plan.stages:
            if stage.done:
                by_bucket.setdefault(self._bucket(stage), []).append(
                    (stage.predicted_s, stage.observed_s or 0.0)
                )
        models = {}
        for bucket, points in by_bucket.items():
            pred_total = sum(p for p, _ in points)
            obs_total = sum(o for _, o in points)
            count = len(points)
            mean_pred = pred_total / count
            variance = sum((p - mean_pred) ** 2 for p, _ in points)
            if count >= 2 and variance > 1e-12 * max(1.0, mean_pred**2):
                mean_obs = obs_total / count
                slope = sum(
                    (p - mean_pred) * (o - mean_obs) for p, o in points
                ) / variance
                if slope >= 0:
                    models[bucket] = (
                        "affine", mean_obs - slope * mean_pred, slope,
                    )
                    continue
            if pred_total > 0 and obs_total > 0:
                models[bucket] = ("ratio", obs_total / pred_total, None)
        return models

    def _wall_inflation(self):
        """Wall seconds elapsed per span-observed second so far. Stage
        spans miss the inter-stage wall cost — process forks/collects,
        result serialization, the monitor itself — so an ETA built from
        span-calibrated stage times alone lands systematically short.
        Elapsed wall over summed observed spans is exactly that missing
        multiplier; clamped to [1, 4] so one slow fork early in the run
        cannot blow the estimate up."""
        observed = sum(
            stage.observed_s or 0.0
            for stage in self.plan.stages if stage.done
        )
        if observed <= 0 or self.last_wall_s <= 0:
            return 1.0
        return min(4.0, max(1.0, self.last_wall_s / observed))

    def eta_s(self):
        """Estimated remaining seconds: each unfinished stage priced
        by its kind's fitted online model (affine or ratio, see
        :meth:`_bucket_models`; global ratio as fallback), scaled by
        the run's wall-vs-span inflation."""
        models = self._bucket_models()
        fallback = self.calibration_ratio()
        remaining = 0.0
        current = self.next_stage()
        for stage in self.plan.stages:
            if stage.done:
                continue
            model = models.get(self._bucket(stage))
            if model is None:
                estimate = stage.predicted_s * fallback
            elif model[0] == "affine":
                estimate = max(
                    0.0, model[1] + model[2] * stage.predicted_s
                )
            else:
                estimate = stage.predicted_s * model[1]
            if stage is current:
                estimate *= 1.0 - self._partial()
            remaining += estimate
        return remaining * self._wall_inflation()

    def __repr__(self):
        return (f"<ProgressState {self.stages_done()}/{len(self.plan)} "
                f"stages, {self.fraction() * 100:.0f}%>")


class ProgressRenderer:
    """Ledger listener that prints a line as each stage completes —
    what ``repro run --progress`` attaches."""

    def __init__(self, stage_plan, stream=None):
        import sys

        self.state = ProgressState(stage_plan)
        self.stream = stream if stream is not None else sys.stdout

    def __call__(self, event):
        completed = self.state.on_event(event)
        state = self.state
        if completed is not None:
            print(
                f"progress: {completed.key} done in "
                f"{completed.observed_s:.3f}s (predicted "
                f"{completed.predicted_s:.3f}s) — "
                f"{state.stages_done()}/{len(state.plan)} stages, "
                f"{state.fraction() * 100:.0f}% weighted, "
                f"eta {state.eta_s():.2f}s",
                file=self.stream,
            )
        elif event.get("kind") == "run_end":
            print(
                f"progress: run {event.get('status', 'done')} at "
                f"{event.get('wall_s', 0.0):.3f}s "
                f"({state.stages_done()}/{len(state.plan)} stages)",
                file=self.stream,
            )


def render_progress(state, width=30):
    """Full progress table for ``repro top``: per-stage predicted vs
    observed seconds, the in-flight stage's task commits, and the
    calibrated ETA."""
    plan = state.plan
    lines = [
        f"### progress — plan {plan.plan_label or '?'}, "
        f"{state.stages_done()}/{len(plan)} stages, "
        f"{state.fraction() * 100:.0f}% weighted"
    ]
    current = state.next_stage()
    for stage in plan.stages:
        if stage.done:
            status = "done"
            observed = f"{stage.observed_s:>9.3f}s"
        elif stage is current and not state.run_ended:
            tasks = ""
            if state.current_tasks_total:
                tasks = (f" ({state.current_tasks_done}/"
                         f"{state.current_tasks_total} tasks)")
            status = f"running{tasks}"
            observed = " " * 9 + "—"
        else:
            status = "pending"
            observed = " " * 9 + "—"
        bar_fill = int(round(
            width * (stage.predicted_s / plan.total_predicted_s)
        )) if plan.total_predicted_s else 0
        lines.append(
            f"  {stage.key:<18s} {stage.predicted_s:>9.3f}s {observed} "
            f"|{'#' * bar_fill:<{width}s}| {status}"
        )
    if state.run_ended:
        lines.append(
            f"  run {state.run_status or 'done'} at "
            f"{state.last_wall_s:.3f}s elapsed"
        )
    else:
        lines.append(
            f"  ETA {state.eta_s():.2f}s (elapsed {state.last_wall_s:.3f}s, "
            f"calibration ×{state.calibration_ratio():.3g})"
        )
    return "\n".join(lines)
