"""The run-history warehouse: cross-run analytics over ``obs/v1``.

Every observed run already leaves a complete record — an ``obs/v1``
ledger or a ``trace/v2`` bench envelope — and until now the repo threw
it away after `repro top`/SLO gating. This module keeps them: each
source file is *summarized* into one compact ``runsum/v1`` record
(workload identity and environment fingerprint, chosen plan knobs,
per-stage wall/sim/self seconds, per-region memory peaks vs budgets,
online-calibration ratios, recovery counts, metric-series peaks, SLO
verdict counts) and appended to an on-disk :class:`HistoryStore`, so
drift questions become queries over a timeline instead of a pair of
ad-hoc files.

Store layout and durability
---------------------------
``<store>/runs/<run_id>.json`` holds one record per run, written with
the same tmp + fsync + ``os.replace`` discipline as the checkpoint
store (:func:`repro.recovery.store.atomic_write_bytes`), so a torn
write can never masquerade as a record. ``<store>/index.jsonl`` is the
append-only ingest order — one JSON line per run, appended with a
single ``O_APPEND`` write and read with the same one-torn-tail
tolerance as :func:`repro.observe.ledger.read_ledger`. The record file
is written *before* the index line, and listing self-heals by scanning
``runs/`` for records a crash left unindexed, so the index can lag but
never lie.

``run_id`` is the SHA-256 of the *source file bytes* (first 16 hex
chars), which makes ingest idempotent by construction: re-ingesting
the same ledger returns the existing record without touching disk.

Change-point detection
----------------------
:func:`evaluate_trend` flags drift with a robust z-score over the
last-K window of each metric series: ``z = (v - median) / scale`` with
``scale = max(1.4826·MAD, 0.05·|median|, 1e-9)``. Median/MAD instead
of mean/stddev so one outlier run cannot mask itself by inflating the
spread; the 5%-of-median floor keeps near-constant series (wall
seconds that jitter by microseconds) from flagging noise. Rules live
in ``slo/default.yaml`` under the ``history:`` scope, reusing the SLO
file format and the dotted-path + glob metric grammar — a trend metric
is resolved against the ``runsum/v1`` record itself (e.g.
``stages.*.sim_s``, ``recovery.total``, ``memory.*.peak_bytes``).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
from dataclasses import dataclass

import fnmatch

from repro.metrics import METRICS_SCHEMA
from repro.observe.ledger import LEDGER_SCHEMA, read_ledger

#: Version tag carried by every summary record.
RUNSUM_SCHEMA = "runsum/v1"

#: The observability schema versions a run was recorded under — part
#: of the environment fingerprint, so a summary produced by an older
#: ledger format never silently compares as the same environment.
SCHEMA_VERSIONS = {
    "ledger": LEDGER_SCHEMA,
    "envelope": "trace/v2",
    "metrics": METRICS_SCHEMA,
    "summary": RUNSUM_SCHEMA,
}

#: Envelope fields stripped from ledger events when lifting their
#: payload into a summary block.
_ENVELOPE_FIELDS = ("schema", "seq", "wall_s", "sim_time_s", "kind")


# ----------------------------------------------------------------------
# environment fingerprint
# ----------------------------------------------------------------------
def _repo_dirty():
    """True/False when the working tree's cleanliness is knowable,
    None when it is not (no git, not a repo, git times out)."""
    try:
        proc = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, timeout=5.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return bool(proc.stdout.strip())


def environment_meta():
    """The stable environment fingerprint block recorded in
    ``run_meta``: enough to tell two machines (or two checkouts)
    apart without recording anything volatile like hostnames or
    timestamps."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "repo_dirty": _repo_dirty(),
        "schemas": dict(SCHEMA_VERSIONS),
    }


def run_fingerprint(meta):
    """Stable 16-hex-char digest of a ``run_meta`` payload (workload
    identity + environment). Canonical JSON, so dict insertion order
    cannot change the fingerprint."""
    payload = json.dumps(meta, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# span reconstruction from the flat ledger stream
# ----------------------------------------------------------------------
def spans_from_events(events):
    """Rebuild the span tree a ledger's flat ``span_start``/``span_end``
    stream recorded, as a list of span dicts in start order.

    Each span carries a ``path`` — ancestor names joined with ``/``,
    with an ``@N`` occurrence suffix for repeated siblings (the second
    ``join`` under ``workload`` is ``workload/join@2``) — which is the
    alignment key :func:`repro.observe.diff.diff_runs` joins on.
    ``self_s`` is wall seconds minus the direct children's wall
    seconds, clamped at zero. Spans left open at the end of the stream
    (a torn ledger) close with status ``"torn"`` and the last wall
    offset the ledger reached.
    """
    spans = []
    stack = []
    root_counts = {}
    last_wall = 0.0
    last_sim = 0.0
    start_seq = 0

    def close(frame, wall_s, sim_s, status):
        span = {
            "path": frame["path"],
            "name": frame["name"],
            "depth": frame["depth"],
            "start_seq": frame["start_seq"],
            "wall_s": round(max(0.0, wall_s), 9),
            "sim_s": round(max(0.0, sim_s), 9),
            "self_s": round(max(0.0, wall_s - frame["children_s"]), 9),
            "status": status,
        }
        spans.append(span)
        if stack:
            stack[-1]["children_s"] += span["wall_s"]
        return span

    for event in events:
        wall = float(event.get("wall_s") or 0.0)
        sim = float(event.get("sim_time_s") or 0.0)
        last_wall = max(last_wall, wall)
        last_sim = max(last_sim, sim)
        kind = event.get("kind")
        if kind == "span_start":
            name = str(event.get("name") or "span")
            counts = stack[-1]["counts"] if stack else root_counts
            seen = counts.get(name, 0)
            counts[name] = seen + 1
            label = name if seen == 0 else f"{name}@{seen + 1}"
            path = f"{stack[-1]['path']}/{label}" if stack else label
            start_seq += 1
            stack.append({
                "name": name, "path": path, "depth": len(stack),
                "start_seq": start_seq, "wall_start": wall,
                "sim_start": sim, "children_s": 0.0, "counts": {},
            })
        elif kind == "span_end":
            name = str(event.get("name") or "span")
            if not any(frame["name"] == name for frame in stack):
                continue
            while stack:
                frame = stack.pop()
                matched = frame["name"] == name
                if matched and event.get("span_s") is not None:
                    wall_s = float(event["span_s"])
                else:
                    wall_s = wall - frame["wall_start"]
                status = (str(event.get("status") or "ok")
                          if matched else "torn")
                close(frame, wall_s, sim - frame["sim_start"], status)
                if matched:
                    break
    while stack:
        frame = stack.pop()
        close(frame, last_wall - frame["wall_start"],
              last_sim - frame["sim_start"], "torn")
    spans.sort(key=lambda span: span["start_seq"])
    return spans


def spans_from_trace(tree, skip_root=True):
    """The same span-dict list, from an *exported* trace tree (the
    ``trace`` block of a ``trace/v2`` envelope). ``skip_root`` drops
    the tracer's implicit root span so envelope paths align with
    ledger paths (the root never streams through the ledger sink)."""
    if not tree:
        return []
    spans = []
    seq = [0]

    def walk(node, parent_path, depth, counts):
        name = str(node.get("name") or "span")
        seen = counts.get(name, 0)
        counts[name] = seen + 1
        label = name if seen == 0 else f"{name}@{seen + 1}"
        path = f"{parent_path}/{label}" if parent_path else label
        children = node.get("children") or []
        wall_s = float(node.get("wall_s") or 0.0)
        children_s = sum(float(c.get("wall_s") or 0.0) for c in children)
        seq[0] += 1
        spans.append({
            "path": path,
            "name": name,
            "depth": depth,
            "start_seq": seq[0],
            "wall_s": round(max(0.0, wall_s), 9),
            "sim_s": round(max(0.0, float(node.get("sim_end_s") or 0.0)
                                - float(node.get("sim_start_s") or 0.0)), 9),
            "self_s": round(max(0.0, wall_s - children_s), 9),
            "status": str(node.get("status") or "ok"),
        })
        child_counts = {}
        for child in children:
            walk(child, path, depth + 1, child_counts)

    if skip_root:
        counts = {}
        for child in tree.get("children") or []:
            walk(child, "", 0, counts)
        if not spans:
            walk(tree, "", 0, {})
    else:
        walk(tree, "", 0, {})
    return spans


# ----------------------------------------------------------------------
# summarization: one runsum/v1 record per run
# ----------------------------------------------------------------------
def _payload(event):
    return {key: value for key, value in event.items()
            if key not in _ENVELOPE_FIELDS}


def _stages_from_spans(spans):
    """Per-stage seconds from the span list: depth-0 spans plus the
    direct children of ``workload`` (keyed without the ``workload/``
    prefix, so ledger and envelope runs align on the same keys)."""
    stages = {}
    for span in spans:
        if span["depth"] == 0:
            key = span["path"]
        elif span["depth"] == 1 and span["path"].startswith("workload/"):
            key = span["path"][len("workload/"):]
        else:
            continue
        stages[key] = {
            "wall_s": span["wall_s"],
            "sim_s": span["sim_s"],
            "self_s": span["self_s"],
            "status": span["status"],
        }
    return stages


def _metric_key(name, labels):
    if not labels:
        return str(name)
    inner = ",".join(
        f"{key}={labels[key]}" for key in sorted(labels)
    )
    return f"{name}{{{inner}}}"


def _region_key(labels):
    parts = [str(labels[key]) for key in ("worker", "region")
             if key in labels]
    return "/".join(parts) if parts else "all"


def _memory_from_events(events):
    peaks = {}
    budgets = {}
    for event in events:
        if event.get("kind") != "metric":
            continue
        name = event.get("metric")
        if name not in ("mem_used_bytes", "mem_capacity_bytes"):
            continue
        labels = event.get("labels") or {}
        key = _region_key(labels)
        try:
            value = float(event.get("value") or 0.0)
        except (TypeError, ValueError):
            continue
        if name == "mem_used_bytes":
            peaks[key] = max(peaks.get(key, 0.0), value)
        else:
            budgets[key] = value
    memory = {}
    for key in sorted(set(peaks) | set(budgets)):
        peak = peaks.get(key)
        budget = budgets.get(key)
        memory[key] = {
            "peak_bytes": peak,
            "budget_bytes": budget,
            "over_budget": bool(
                peak is not None and budget and peak > budget
            ),
        }
    return memory


def _metric_peaks_from_events(events):
    peaks = {}
    for event in events:
        if event.get("kind") != "metric":
            continue
        key = _metric_key(event.get("metric"),
                          event.get("labels") or {})
        try:
            value = float(event.get("value") or 0.0)
        except (TypeError, ValueError):
            continue
        peaks[key] = max(peaks.get(key, value), value)
    return peaks


def _calibration_from_events(events):
    """Replay the ledger through the live progress monitor to recover
    the online calibration ratios (overall and per stage kind); None
    when the run carried no ``stage_plan``."""
    from repro.observe.progress import ProgressState, StagePlan

    plan_event = next(
        (e for e in events if e.get("kind") == "stage_plan"), None
    )
    if plan_event is None or not plan_event.get("stages"):
        return None
    state = ProgressState(StagePlan.from_list(
        plan_event["stages"], plan_label=plan_event.get("plan")
    ))
    for event in events:
        state.on_event(event)
    return {
        "overall": round(state.calibration_ratio(), 9),
        "buckets": {
            bucket: round(ratio, 9)
            for bucket, ratio in sorted(state.bucket_ratios().items())
        },
        "stages_done": state.stages_done(),
        "stages_planned": len(state.plan),
    }


def _slo_block(verdicts):
    counts = {"breach": 0, "warn": 0, "pass": 0, "skip": 0}
    failing = []
    for verdict in verdicts:
        counts[verdict.status] = counts.get(verdict.status, 0) + 1
        if verdict.ok is False:
            failing.append(verdict.rule.name)
    return {**counts, "failing": sorted(failing)}


def summarize_ledger(events, problems=(), source="", slo_rules=None):
    """Summarize a parsed ``obs/v1`` event stream into a ``runsum/v1``
    record. A ledger without ``run_end`` (SIGKILLed driver, torn file)
    is summarized with status ``"torn"`` — never rejected: the whole
    point of the warehouse is that killed runs still join the
    timeline."""
    spans = spans_from_events(events)
    meta_event = next(
        (e for e in events if e.get("kind") == "run_meta"), None
    )
    meta = _payload(meta_event) if meta_event else {}
    fingerprint = meta.pop("fingerprint", None) or run_fingerprint(meta)
    decision = next(
        (e for e in events if e.get("kind") == "optimizer_decision"), None
    )
    end = next(
        (e for e in events if e.get("kind") == "run_end"), None
    )
    recovery = {}
    for event in events:
        if event.get("kind") != "recovery":
            continue
        what = str(event.get("event") or "?")
        recovery[what] = recovery.get(what, 0) + 1
    kinds = {}
    for event in events:
        kind = str(event.get("kind") or "?")
        kinds[kind] = kinds.get(kind, 0) + 1
    record = {
        "schema": RUNSUM_SCHEMA,
        "kind": "ledger",
        "source": str(source),
        "status": (str(end.get("status") or "ok") if end else "torn"),
        "meta": meta,
        "fingerprint": fingerprint,
        "knobs": _payload(decision) if decision else {},
        "stages": _stages_from_spans(spans),
        "spans": spans,
        "calibration": _calibration_from_events(events),
        "memory": _memory_from_events(events),
        "metrics": _metric_peaks_from_events(events),
        "recovery": {**recovery, "total": sum(recovery.values())},
        "events": len(events),
        "events_by_kind": kinds,
        "parse_problems": list(problems),
        "wall_s": round(max(
            (float(e.get("wall_s") or 0.0) for e in events), default=0.0
        ), 9),
        "sim_s": round(max(
            (float(e.get("sim_time_s") or 0.0) for e in events),
            default=0.0,
        ), 9),
    }
    if slo_rules:
        from repro.observe.slo import evaluate_slo

        record["slo"] = _slo_block(
            evaluate_slo(slo_rules, _ledger_source(events, problems))
        )
    else:
        record["slo"] = None
    return record


def _ledger_source(events, problems):
    """An already-normalized SLO source for a parsed event list (the
    dict shape :func:`repro.observe.slo.load_slo_source` builds when
    given a ledger path)."""
    from repro.observe.ledger import validate_events

    kinds = {}
    for event in events:
        kind = event.get("kind", "?")
        kinds[kind] = kinds.get(kind, 0) + 1
    return {
        "kind": "ledger",
        "results": {
            "ledger_events": len(events),
            "ledger_parse_errors": len(problems),
            "ledger_schema_problems": len(validate_events(events)),
            **{f"events_{kind}": count
               for kind, count in sorted(kinds.items())},
        },
        "params": {},
        "metrics": None,
        "ledger": list(events),
        "ledger_problems": list(problems),
    }


def summarize_envelope(payload, source="", slo_rules=None):
    """Summarize a ``trace/v2`` bench/run envelope into the same
    ``runsum/v1`` shape, so benches and live runs share one store."""
    from repro.metrics import series_peak

    spans = spans_from_trace(payload.get("trace") or {})
    stages = _stages_from_spans(spans)
    meta = dict(payload.get("params") or {})
    meta.setdefault("bench", payload.get("bench"))
    fingerprint = run_fingerprint(meta)
    knobs = {}
    for node in _walk_trace(payload.get("trace") or {}):
        if node.get("name") == "workload":
            knobs = {
                key: value
                for key, value in (node.get("attrs") or {}).items()
                if key in ("plan", "cpu", "join", "persistence",
                           "num_partitions")
            }
            break
    peaks = {}
    metrics_block = payload.get("metrics") or {}
    for series in metrics_block.get("series") or ():
        key = _metric_key(series.get("name"),
                          series.get("labels") or {})
        peak = series_peak(series)
        if peak is not None:
            try:
                peaks[key] = max(peaks.get(key, float(peak)), float(peak))
            except (TypeError, ValueError):
                continue
    memory = {}
    used = {}
    budgets = {}
    for series in metrics_block.get("series") or ():
        name = series.get("name")
        if name not in ("mem_used_bytes", "mem_capacity_bytes"):
            continue
        key = _region_key(series.get("labels") or {})
        peak = series_peak(series)
        if peak is None:
            continue
        if name == "mem_used_bytes":
            used[key] = max(used.get(key, 0.0), float(peak))
        else:
            budgets[key] = float(peak)
    for key in sorted(set(used) | set(budgets)):
        peak = used.get(key)
        budget = budgets.get(key)
        memory[key] = {
            "peak_bytes": peak,
            "budget_bytes": budget,
            "over_budget": bool(
                peak is not None and budget and peak > budget
            ),
        }
    record = {
        "schema": RUNSUM_SCHEMA,
        "kind": "envelope",
        "source": str(source),
        "status": "ok",
        "meta": meta,
        "fingerprint": fingerprint,
        "knobs": knobs,
        "stages": stages,
        "spans": spans,
        "calibration": None,
        "memory": memory,
        "metrics": peaks,
        "recovery": {"total": 0},
        "results": payload.get("results") or {},
        "events": 0,
        "events_by_kind": {},
        "parse_problems": [],
        "wall_s": round(float(
            (payload.get("trace") or {}).get("wall_s") or 0.0
        ), 9),
        "sim_s": 0.0,
    }
    if slo_rules:
        from repro.observe.slo import evaluate_slo

        record["slo"] = _slo_block(evaluate_slo(slo_rules, payload))
    else:
        record["slo"] = None
    return record


def _walk_trace(node):
    stack = [node]
    while stack:
        current = stack.pop()
        if not isinstance(current, dict):
            continue
        yield current
        stack.extend(reversed(current.get("children") or ()))


def summarize_path(path, slo_rules=None):
    """Summarize a source file — a ``trace/v2`` envelope or an
    ``obs/v1`` ledger, sniffed from the content — into a ``runsum/v1``
    record plus the raw bytes (for content addressing)."""
    with open(path, "rb") as handle:
        raw = handle.read()
    try:
        payload = json.loads(raw)
        is_envelope = (
            isinstance(payload, dict) and "trace" in payload
            and payload.get("schema", "").startswith("trace/")
        )
    except ValueError:
        payload = None
        is_envelope = False
    if is_envelope:
        record = summarize_envelope(payload, source=path,
                                    slo_rules=slo_rules)
    else:
        events, problems = read_ledger(path)
        record = summarize_ledger(events, problems, source=path,
                                  slo_rules=slo_rules)
    return record, raw


# ----------------------------------------------------------------------
# the on-disk store
# ----------------------------------------------------------------------
class HistoryStore:
    """Append-only warehouse of ``runsum/v1`` records.

    Parameters
    ----------
    root:
        Store directory (created on first use). Records live under
        ``<root>/runs/``, ingest order in ``<root>/index.jsonl``.
    """

    INDEX_NAME = "index.jsonl"

    def __init__(self, root):
        self.root = os.fspath(root)
        self.runs_dir = os.path.join(self.root, "runs")
        self.index_path = os.path.join(self.root, self.INDEX_NAME)

    # ------------------------------------------------------------------
    def _ensure_dirs(self):
        from repro.recovery.store import reclaim_tmp_files

        os.makedirs(self.runs_dir, exist_ok=True)
        reclaim_tmp_files(self.runs_dir)

    def _record_path(self, run_id):
        return os.path.join(self.runs_dir, f"{run_id}.json")

    def _read_index(self):
        """Index entries in ingest order, tolerating one torn tail
        (the only tear a single-write append stream can suffer)."""
        if not os.path.exists(self.index_path):
            return []
        with open(self.index_path, "rb") as handle:
            raw = handle.read()
        lines = raw.split(b"\n")
        trailing = raw.endswith(b"\n")
        if trailing:
            lines = lines[:-1]
        entries = []
        for position, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                entry = json.loads(line.decode("utf-8", errors="replace"))
                if not isinstance(entry, dict):
                    raise ValueError("index entry is not an object")
            except ValueError:
                if position == len(lines) - 1 and not trailing:
                    continue  # torn tail: the record file is the truth
                continue  # interior damage: skip, self-heal below
            entries.append(entry)
        return entries

    def _append_index(self, entry):
        payload = json.dumps(
            entry, separators=(",", ":"), default=str
        ).encode("utf-8") + b"\n"
        fd = os.open(self.index_path,
                     os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, payload)
            os.fsync(fd)
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    def ingest(self, path, slo_rules=None):
        """Ingest one source file; returns ``(record, created)``.

        ``run_id`` is content-addressed, so ingesting the same file
        twice is idempotent: the second call returns the stored record
        with ``created=False`` and writes nothing."""
        self._ensure_dirs()
        record, raw = summarize_path(path, slo_rules=slo_rules)
        run_id = hashlib.sha256(raw).hexdigest()[:16]
        record_path = self._record_path(run_id)
        if os.path.exists(record_path):
            return self.load(run_id), False
        known = self.run_ids()
        record["run_id"] = run_id
        record["ingested_seq"] = len(known) + 1
        from repro.recovery.store import atomic_write_bytes

        atomic_write_bytes(record_path, json.dumps(
            record, indent=2, sort_keys=True, default=str
        ).encode("utf-8"))
        self._append_index({
            "run_id": run_id,
            "ingested_seq": record["ingested_seq"],
            "fingerprint": record.get("fingerprint"),
            "status": record.get("status"),
            "source": record.get("source"),
        })
        return record, True

    def run_ids(self):
        """Run ids in ingest order. Self-healing: records whose index
        line was lost (crash between record write and index append, a
        torn tail) are appended from a ``runs/`` scan, ordered by
        their recorded ``ingested_seq``."""
        entries = self._read_index()
        ids = []
        seen = set()
        for entry in entries:
            run_id = entry.get("run_id")
            if run_id and run_id not in seen:
                ids.append(run_id)
                seen.add(run_id)
        if os.path.isdir(self.runs_dir):
            orphans = []
            for name in os.listdir(self.runs_dir):
                if not name.endswith(".json"):
                    continue
                run_id = name[:-len(".json")]
                if run_id in seen:
                    continue
                try:
                    record = self.load(run_id)
                except (OSError, ValueError):
                    continue
                orphans.append(
                    (record.get("ingested_seq") or 0, run_id)
                )
            for _, run_id in sorted(orphans):
                ids.append(run_id)
                seen.add(run_id)
        return ids

    def load(self, run_id):
        with open(self._record_path(run_id)) as handle:
            record = json.load(handle)
        if not isinstance(record, dict):
            raise ValueError(f"record {run_id} is not an object")
        return record

    def summaries(self, last=None):
        """Records in ingest order; ``last`` keeps only the K newest."""
        ids = self.run_ids()
        if last is not None and last > 0:
            ids = ids[-last:]
        records = []
        for run_id in ids:
            try:
                records.append(self.load(run_id))
            except (OSError, ValueError):
                continue
        return records

    def resolve(self, ref):
        """Resolve a run reference: ``@N`` / ``@-N`` ingest-order
        ordinals, or a unique run-id prefix. Raises ``KeyError`` for
        unknown refs, ``ValueError`` for ambiguous prefixes."""
        ids = self.run_ids()
        if not ids:
            raise KeyError(f"run {ref!r}: store is empty")
        if ref.startswith("@"):
            try:
                position = int(ref[1:])
            except ValueError:
                raise KeyError(f"bad run ordinal {ref!r}") from None
            try:
                return ids[position]
            except IndexError:
                raise KeyError(
                    f"run {ref!r}: only {len(ids)} run(s) ingested"
                ) from None
        matches = [run_id for run_id in ids if run_id.startswith(ref)]
        if not matches:
            raise KeyError(f"run {ref!r}: no such run")
        if len(matches) > 1:
            raise ValueError(
                f"run {ref!r} is ambiguous: {', '.join(matches)}"
            )
        return matches[0]

    def __len__(self):
        return len(self.run_ids())

    def __repr__(self):
        return f"<HistoryStore {self.root}: {len(self)} runs>"


# ----------------------------------------------------------------------
# trend rules and change-point detection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HistoryRule:
    """One declarative drift rule over the run timeline."""

    name: str
    metric: str
    threshold: float = 3.5
    direction: str = "high"
    min_runs: int = 3
    severity: str = "breach"

    def __post_init__(self):
        if self.direction not in ("high", "low", "both"):
            raise ValueError(
                f"rule {self.name!r}: direction must be 'high', 'low' "
                f"or 'both', got {self.direction!r}"
            )
        if self.severity not in ("breach", "warn"):
            raise ValueError(
                f"rule {self.name!r}: severity must be 'breach' or "
                f"'warn', got {self.severity!r}"
            )
        if self.threshold <= 0:
            raise ValueError(
                f"rule {self.name!r}: threshold must be positive"
            )


def load_history_rules(path):
    """Load the ``history:`` scope of a ruleset file into
    :class:`HistoryRule` values (empty list when the file carries no
    history scope)."""
    from repro.observe.slo import load_ruleset

    rules = []
    for entry in load_ruleset(path).get("history", []):
        rules.append(HistoryRule(
            name=entry["name"],
            metric=entry["metric"],
            threshold=float(entry.get("threshold", 3.5)),
            direction=entry.get("direction", "high"),
            min_runs=int(entry.get("min_runs", 3)),
            severity=entry.get("severity", "breach"),
        ))
    return rules


def _resolve_elements(value, segments, prefix=""):
    """Recursive dotted-path traversal with glob fan-out at *any*
    segment (the SLO resolver only globs at the tail): returns
    ``{element_key: leaf_value}`` where the element key names the
    concrete keys each glob matched (``stages.*.sim_s`` over a run
    with a ``read`` stage yields ``{"read": …}``)."""
    if value is None:
        return {}
    if not segments:
        return {prefix: value}
    segment, rest = segments[0], segments[1:]
    if not isinstance(value, dict):
        return {}
    if "*" in segment or "?" in segment:
        out = {}
        for key in sorted(value):
            if fnmatch.fnmatchcase(str(key), segment):
                sub = f"{prefix}.{key}" if prefix else str(key)
                out.update(_resolve_elements(value[key], rest, sub))
        return out
    return _resolve_elements(value.get(segment), rest, prefix)


def resolve_trend_metric(record, spec):
    """Resolve a trend metric spec against one ``runsum/v1`` record:
    the SLO dotted-path + glob grammar rooted at the record itself
    (``stages.*.sim_s``, ``recovery.total``, ``wall_s``, …), with
    globs allowed mid-path. Returns a scalar (un-globbed spec), a
    dict of matches, or None when absent."""
    elements = _resolve_elements(record, spec.split("."))
    if not elements:
        return None
    if list(elements) == [""]:
        return elements[""]
    return elements


def robust_scale(values):
    """``max(1.4826·MAD, 0.05·|median|, 1e-9)`` — the denominator of
    the robust z-score. The MAD term adapts to genuine spread, the
    5%-of-median floor keeps near-constant series from flagging
    numeric jitter, and the epsilon keeps all-zero series finite."""
    med = _median(values)
    mad = _median([abs(value - med) for value in values])
    return max(1.4826 * mad, 0.05 * abs(med), 1e-9)


def _median(values):
    ordered = sorted(values)
    count = len(ordered)
    if count == 0:
        return 0.0
    middle = count // 2
    if count % 2:
        return float(ordered[middle])
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def trend_series(records, spec):
    """``{element_key: [(run_id, value), …]}`` in ingest order for one
    metric spec over a record list. Scalar specs land under the ``""``
    key; records where the metric is absent are skipped (a bench
    envelope does not break a ledger-metric timeline)."""
    series = {}
    for record in records:
        resolved = resolve_trend_metric(record, spec)
        if resolved is None:
            continue
        items = (resolved.items() if isinstance(resolved, dict)
                 else [("", resolved)])
        for key, value in items:
            try:
                value = float(value)
            except (TypeError, ValueError):
                continue
            series.setdefault(key, []).append(
                (record.get("run_id", "?"), value)
            )
    return series


def evaluate_trend(records, rules, last=None):
    """Run change-point detection over the record timeline.

    Returns ``{"rules": [...], "flags": [...], "runs": N}`` where each
    flag is one ``(rule, element, run)`` whose robust z-score over the
    window exceeds the rule's threshold in the rule's direction.
    Series shorter than ``min_runs`` are skipped — two runs cannot
    define "normal".
    """
    if last is not None and last > 0:
        records = records[-last:]
    evaluated = []
    flags = []
    for rule in rules:
        for key, points in sorted(trend_series(records, rule.metric).items()):
            values = [value for _, value in points]
            if len(values) < rule.min_runs:
                evaluated.append({
                    "rule": rule.name, "metric": rule.metric,
                    "element": key, "points": points,
                    "skipped": f"{len(values)} run(s) < min_runs "
                               f"{rule.min_runs}",
                })
                continue
            med = _median(values)
            scale = robust_scale(values)
            zscores = [(value - med) / scale for value in values]
            evaluated.append({
                "rule": rule.name, "metric": rule.metric,
                "element": key, "points": points,
                "median": med, "scale": scale, "z": zscores,
                "skipped": None,
            })
            for (run_id, value), z in zip(points, zscores):
                if rule.direction == "high" and z <= rule.threshold:
                    continue
                if rule.direction == "low" and z >= -rule.threshold:
                    continue
                if rule.direction == "both" and abs(z) <= rule.threshold:
                    continue
                flags.append({
                    "rule": rule.name, "metric": rule.metric,
                    "element": key, "run_id": run_id,
                    "value": value, "median": med, "z": round(z, 3),
                    "severity": rule.severity,
                })
    return {"rules": evaluated, "flags": flags, "runs": len(records)}


def trend_has_breach(report):
    """True iff any flag carries breach severity — what
    ``repro history trend --gate`` exits nonzero on."""
    return any(
        flag["severity"] == "breach" for flag in report.get("flags", ())
    )
