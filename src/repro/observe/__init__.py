"""Live observability for Vista runs.

Where :mod:`repro.trace` and :mod:`repro.metrics` answer questions
*after* a run returns, this package makes the same signals available
*while the run executes* — and keeps them when it never returns:

- :mod:`repro.observe.ledger` — the streaming run ledger: an
  append-only, schema-versioned (``obs/v1``) JSONL event stream that
  tracer spans, metric samples, recovery events, optimizer decisions,
  and backend wave/fork lifecycle emit into as they happen. A SIGKILLed
  run leaves a readable ledger up to the kill point.
- :mod:`repro.observe.perfetto` — Chrome trace-event / Perfetto
  export: the merged span tree (driver + forked process-backend
  children on pid/tid tracks) as a standard ``trace.json`` loadable in
  ``ui.perfetto.dev``.
- :mod:`repro.observe.progress` — the live progress monitor behind
  ``repro run --progress`` and ``repro top``: per-stage completion and
  an ETA computed from the cost model's predicted stage seconds
  against observed span progress (online calibration).
- :mod:`repro.observe.slo` — the declarative SLO/gate engine: rules
  (metric, comparator, threshold, severity) evaluated against any
  ledger or trace/v2 envelope; ``repro report --slo`` exits nonzero on
  breach.
"""

from repro.observe.diff import diff_runs, has_regressions
from repro.observe.history import (
    HistoryRule,
    HistoryStore,
    RUNSUM_SCHEMA,
    environment_meta,
    evaluate_trend,
    load_history_rules,
    run_fingerprint,
    spans_from_events,
    spans_from_trace,
    summarize_envelope,
    summarize_ledger,
    summarize_path,
    trend_has_breach,
)
from repro.observe.ledger import (
    LEDGER_SCHEMA,
    NULL_LEDGER,
    RunLedger,
    read_ledger,
    validate_events,
)
from repro.observe.perfetto import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.observe.progress import (
    ProgressRenderer,
    ProgressState,
    StagePlan,
    predict_stage_plan,
    render_progress,
)
from repro.observe.slo import (
    SloRule,
    evaluate_slo,
    has_breach,
    load_rules,
    load_ruleset,
    load_slo_source,
    render_slo,
)

__all__ = [
    "HistoryRule",
    "HistoryStore",
    "LEDGER_SCHEMA",
    "NULL_LEDGER",
    "ProgressRenderer",
    "ProgressState",
    "RUNSUM_SCHEMA",
    "RunLedger",
    "SloRule",
    "StagePlan",
    "chrome_trace",
    "diff_runs",
    "environment_meta",
    "evaluate_slo",
    "evaluate_trend",
    "has_breach",
    "has_regressions",
    "load_history_rules",
    "load_rules",
    "load_ruleset",
    "load_slo_source",
    "predict_stage_plan",
    "read_ledger",
    "render_progress",
    "render_slo",
    "run_fingerprint",
    "spans_from_events",
    "spans_from_trace",
    "summarize_envelope",
    "summarize_ledger",
    "summarize_path",
    "trend_has_breach",
    "validate_chrome_trace",
    "validate_events",
    "write_chrome_trace",
]
