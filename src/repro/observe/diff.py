"""Span-aligned profile diffs between two ``runsum/v1`` records.

``repro history diff A B`` answers "what changed between these two
runs" the way a flamegraph diff would: spans are *aligned by path*
(ancestor names joined with ``/``, ``@N`` suffixes disambiguating
repeated siblings — see :func:`repro.observe.history.spans_from_events`)
and each aligned pair reports its wall/self/sim-second deltas; spans
present on only one side surface as ``new``/``vanished`` rows. On top
of the span table the diff reports plan-knob changes, workload/
environment fingerprint drift, metric-series peak deltas, per-region
memory peak deltas, and recovery-count deltas.

Regression classification is deliberately two-tier:

- **deterministic signals** regress at any magnitude: simulated
  seconds only advance through injected faults and recovery backoff,
  so *any* sim-second growth on an aligned span is a regression, as is
  a status downgrade (ok → error/torn) or a recovery-count increase.
- **wall seconds** jitter run to run, so a wall regression needs both
  a ratio (default 2.0×) *and* an absolute floor (default 0.5s) —
  twin CI runs of a sub-second mini workload must diff clean.
"""

from __future__ import annotations

#: Span statuses ordered from healthy to broken, for downgrades.
_STATUS_RANK = {"ok": 0}


def _status_rank(status):
    if status in _STATUS_RANK:
        return _STATUS_RANK[status]
    return 2 if str(status).startswith("error") else 1  # torn & co


def _span_cell(span):
    return {
        "wall_s": span["wall_s"],
        "self_s": span["self_s"],
        "sim_s": span["sim_s"],
        "status": span["status"],
        "depth": span["depth"],
        "start_seq": span["start_seq"],
    }


def _delta_map(base, target):
    deltas = {}
    for key in sorted(set(base) | set(target)):
        old = base.get(key)
        new = target.get(key)
        if old == new:
            continue
        deltas[key] = {"base": old, "target": new}
    return deltas


def diff_runs(base, target, wall_ratio_gate=2.0, wall_floor_s=0.5):
    """Diff two ``runsum/v1`` records; returns a JSON-safe report.

    ``base`` is the reference (older) run, ``target`` the candidate.
    ``wall_ratio_gate``/``wall_floor_s`` tune the wall-regression
    gate: a matched span regresses on wall time only when
    ``target > base * ratio`` **and** ``target - base > floor``.
    """
    base_spans = {span["path"]: span for span in base.get("spans", ())}
    target_spans = {span["path"]: span
                    for span in target.get("spans", ())}
    order = []
    seen = set()
    for span in sorted(target.get("spans", ()),
                       key=lambda s: s["start_seq"]):
        order.append(span["path"])
        seen.add(span["path"])
    for span in sorted(base.get("spans", ()),
                       key=lambda s: s["start_seq"]):
        if span["path"] not in seen:
            order.append(span["path"])
    rows = []
    regressions = []
    for path in order:
        old = base_spans.get(path)
        new = target_spans.get(path)
        if old is not None and new is not None:
            row = {
                "path": path,
                "align": "matched",
                "base": _span_cell(old),
                "target": _span_cell(new),
                "d_wall_s": round(new["wall_s"] - old["wall_s"], 9),
                "d_self_s": round(new["self_s"] - old["self_s"], 9),
                "d_sim_s": round(new["sim_s"] - old["sim_s"], 9),
            }
            reasons = []
            if row["d_sim_s"] > 1e-9:
                reasons.append(
                    f"sim +{row['d_sim_s']:.3f}s (injected delay or "
                    "recovery backoff)"
                )
            if _status_rank(new["status"]) > _status_rank(old["status"]):
                reasons.append(
                    f"status {old['status']} -> {new['status']}"
                )
            if (new["wall_s"] > old["wall_s"] * wall_ratio_gate
                    and new["wall_s"] - old["wall_s"] > wall_floor_s):
                reasons.append(
                    f"wall {old['wall_s']:.3f}s -> {new['wall_s']:.3f}s "
                    f"(> {wall_ratio_gate:g}x and > {wall_floor_s:g}s)"
                )
            row["regression"] = bool(reasons)
            row["reasons"] = reasons
        else:
            row = {
                "path": path,
                "align": "new" if new is not None else "vanished",
                "base": _span_cell(old) if old is not None else None,
                "target": _span_cell(new) if new is not None else None,
                "d_wall_s": None,
                "d_self_s": None,
                "d_sim_s": None,
                "regression": False,
                "reasons": [],
            }
        rows.append(row)
        if row["regression"]:
            regressions.append({"kind": "span", "path": path,
                                "reasons": row["reasons"]})
    base_recovery = dict(base.get("recovery") or {})
    target_recovery = dict(target.get("recovery") or {})
    recovery_deltas = {}
    for key in sorted(set(base_recovery) | set(target_recovery)):
        old_count = int(base_recovery.get(key) or 0)
        new_count = int(target_recovery.get(key) or 0)
        if old_count == new_count:
            continue
        recovery_deltas[key] = {"base": old_count, "target": new_count}
        if key != "total" and new_count > old_count:
            regressions.append({
                "kind": "recovery", "path": key,
                "reasons": [f"recovery[{key}] {old_count} -> "
                            f"{new_count}"],
            })
    metric_deltas = []
    base_metrics = base.get("metrics") or {}
    target_metrics = target.get("metrics") or {}
    for key in sorted(set(base_metrics) | set(target_metrics)):
        old_peak = base_metrics.get(key)
        new_peak = target_metrics.get(key)
        if old_peak == new_peak:
            continue
        try:
            delta = float(new_peak or 0.0) - float(old_peak or 0.0)
        except (TypeError, ValueError):
            delta = None
        metric_deltas.append({
            "metric": key, "base": old_peak, "target": new_peak,
            "delta": delta,
        })
    metric_deltas.sort(
        key=lambda entry: -abs(entry["delta"] or 0.0)
    )
    memory_deltas = {}
    base_memory = base.get("memory") or {}
    target_memory = target.get("memory") or {}
    for key in sorted(set(base_memory) | set(target_memory)):
        old_region = base_memory.get(key) or {}
        new_region = target_memory.get(key) or {}
        old_peak = old_region.get("peak_bytes")
        new_peak = new_region.get("peak_bytes")
        if old_peak == new_peak and (
            old_region.get("over_budget") == new_region.get("over_budget")
        ):
            continue
        memory_deltas[key] = {
            "base_peak_bytes": old_peak,
            "target_peak_bytes": new_peak,
            "base_over_budget": old_region.get("over_budget"),
            "target_over_budget": new_region.get("over_budget"),
        }
        if new_region.get("over_budget") and not old_region.get(
            "over_budget"
        ):
            regressions.append({
                "kind": "memory", "path": key,
                "reasons": [f"region {key} newly over budget "
                            f"(peak {new_peak})"],
            })
    return {
        "base_id": base.get("run_id"),
        "target_id": target.get("run_id"),
        "base_source": base.get("source"),
        "target_source": target.get("source"),
        "fingerprint_match": (
            base.get("fingerprint") == target.get("fingerprint")
        ),
        "meta_changes": _delta_map(base.get("meta") or {},
                                   target.get("meta") or {}),
        "knob_changes": _delta_map(base.get("knobs") or {},
                                   target.get("knobs") or {}),
        "status": {"base": base.get("status"),
                   "target": target.get("status")},
        "spans": rows,
        "matched": sum(1 for r in rows if r["align"] == "matched"),
        "new": sum(1 for r in rows if r["align"] == "new"),
        "vanished": sum(1 for r in rows if r["align"] == "vanished"),
        "metric_deltas": metric_deltas,
        "memory_deltas": memory_deltas,
        "recovery_deltas": recovery_deltas,
        "regressions": regressions,
        "wall_ratio_gate": wall_ratio_gate,
        "wall_floor_s": wall_floor_s,
    }


def has_regressions(diff):
    """True iff the diff found any span/recovery/memory regression —
    what ``repro history diff`` exits nonzero on."""
    return bool(diff.get("regressions"))
