"""The streaming run ledger: an append-only ``obs/v1`` JSONL stream.

Every observable fact of a run — span starts/ends from the tracer,
throttled metric samples, recovery/fault events, optimizer decisions,
wave and fork lifecycle from the dataflow backends — is appended to
one ledger *as it happens*, so a run that never returns (real SIGKILL
included, per the process backend) still leaves a readable record up
to the kill point.

Durability discipline
---------------------
:mod:`repro.recovery.store` writes whole artifacts with
tmp + fsync + ``os.replace`` so a torn write can never be mistaken for
a valid checkpoint. The ledger is the append-stream analogue of that
discipline, with group commit: the file is opened ``O_APPEND``,
events buffer in userspace as complete JSON lines, and every *flush*
is **one** ``os.write`` of whole lines — flushed at wave boundaries,
on every :data:`BARRIER_KINDS` event, and every
:data:`FLUSH_EVERY` events. So a SIGKILLed *driver* leaves a ledger
current to the last wave boundary (the "within one wave of the kill"
guarantee the fault tests assert), and a tear can only hit the final
line of the final flush (kernel-interrupted write, i.e. power loss,
not process death) — :func:`read_ledger` tolerates exactly that one
torn tail. ``fsync`` runs only on barrier kinds (open, recovery
actions, run end); per-event syscalls or syncs would blow the <5%
overhead budget ``bench_kernels.py`` gates — matching the store's
"durable at the moments that matter" stance.

Fork safety
-----------
The process backend forks mid-run and children inherit the ledger fd.
``emit`` records the opening process's pid and becomes a no-op in any
other process, so child writes can never interleave with the parent's:
children ship their observability deltas through the existing
shm/pipe channel and the *parent* emits ``task_fork``/``task_collect``
events on their behalf.
"""

from __future__ import annotations

import json
import os
import time

#: Version tag carried by every ledger event.
LEDGER_SCHEMA = "obs/v1"

#: Event kinds that are fsynced immediately: the facts a post-mortem
#: cannot afford to lose. Everything else rides the page cache (it
#: still survives process death — only machine death can lose it).
BARRIER_KINDS = frozenset({
    "ledger_open",
    "run_meta",
    "stage_plan",
    "optimizer_decision",
    "recovery",
    "run_end",
})

#: The ``obs/v1`` event taxonomy (DESIGN.md §4k). ``validate_events``
#: accepts unknown kinds (forward compatibility) but flags events
#: missing the envelope fields below.
EVENT_KINDS = frozenset({
    "ledger_open",        # first event; records pid and path
    "run_meta",           # workload identity (model, dataset, records)
    "stage_plan",         # predicted per-stage seconds (progress/ETA)
    "optimizer_decision", # Algorithm 1's chosen configuration
    "span_start",         # tracer span opened
    "span_end",           # tracer span closed (status, wall_s)
    "trace_point",        # tracer point event
    "metric",             # throttled metric sample
    "stage_tasks",        # scheduler: partitions entering a stage
    "wave_start",         # scheduler: a wave dispatched to a worker
    "wave_end",           # scheduler: a wave's results committed
    "task_commit",        # exactly-once commit of one partition
    "task_fork",          # process backend: child forked (pid)
    "task_collect",       # process backend: child collected (status)
    "recovery",           # RecoveryLog entry (retry/blacklist/degrade/…)
    "run_end",            # run returned (status ok/crash)
})

#: Envelope fields every event carries.
REQUIRED_FIELDS = ("schema", "seq", "wall_s", "sim_time_s", "kind")

#: Event kinds that force a flush of the userspace line buffer: wave
#: boundaries (the granularity the fault tests assert the ledger is
#: current to) plus every barrier kind.
FLUSH_KINDS = BARRIER_KINDS | frozenset({"wave_start", "wave_end"})

#: Flush the buffer unconditionally once this many lines accumulate,
#: so span/metric-only stretches (e.g. the eager inference stage) still
#: reach the file with bounded lag.
FLUSH_EVERY = 64


class RunLedger:
    """Append-only JSONL event stream for one run.

    Parameters
    ----------
    path:
        Ledger file (opened ``O_APPEND``, created if missing). ``None``
        keeps events in memory only — what ``--progress`` without
        ``--ledger`` uses.
    clock:
        Optional :class:`~repro.faults.clock.SimulatedClock`; attached
        contexts share the fault injector's clock here so events carry
        deterministic simulated timestamps next to wall offsets.
    fsync_barriers:
        fsync on :data:`BARRIER_KINDS` (default). Tests that hammer the
        ledger can turn it off.
    """

    enabled = True

    def __init__(self, path=None, clock=None, fsync_barriers=True):
        self.path = path
        self.clock = clock
        self.fsync_barriers = bool(fsync_barriers)
        self.events = []
        #: Callables ``listener(event_dict)`` invoked on every emit in
        #: the owning process — the live progress monitor's feed.
        self.listeners = []
        self._seq = 0
        self._epoch = time.perf_counter()
        self._owner_pid = os.getpid()
        self._fd = -1
        self._buffer = []
        if path is not None:
            self._fd = os.open(
                os.fspath(path),
                os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644,
            )
        self.emit("ledger_open", pid=self._owner_pid,
                  path=str(path) if path is not None else None)

    # ------------------------------------------------------------------
    def _sim_now(self):
        return self.clock.now if self.clock is not None else 0.0

    def emit(self, kind, **fields):
        """Append one event; returns the event dict (None when emitted
        from a forked child, where the ledger is owned elsewhere)."""
        if os.getpid() != self._owner_pid:
            return None
        self._seq += 1
        event = {
            "schema": LEDGER_SCHEMA,
            "seq": self._seq,
            "wall_s": round(time.perf_counter() - self._epoch, 6),
            "sim_time_s": self._sim_now(),
            "kind": kind,
        }
        event.update(fields)
        self.events.append(event)
        if self._fd >= 0:
            # Envelope keys lead in insertion order; no sort_keys — this
            # runs per span/commit and the order is not part of obs/v1.
            self._buffer.append(json.dumps(
                event, separators=(",", ":"), default=str
            ).encode("utf-8"))
            if kind in FLUSH_KINDS or len(self._buffer) >= FLUSH_EVERY:
                self.flush()
                if self.fsync_barriers and kind in BARRIER_KINDS:
                    os.fsync(self._fd)
        for listener in self.listeners:
            listener(event)
        return event

    def flush(self):
        """Group-commit buffered lines: one ``os.write`` of complete
        lines, so a tear can only ever hit the final line."""
        if self._buffer and self._fd >= 0:
            payload = b"\n".join(self._buffer) + b"\n"
            self._buffer = []
            os.write(self._fd, payload)

    def close(self):
        """Flush and close the file (idempotent); memory events stay."""
        if self._fd >= 0 and os.getpid() == self._owner_pid:
            self.flush()
            try:
                os.fsync(self._fd)
            except OSError:
                pass
            os.close(self._fd)
        self._fd = -1

    # ------------------------------------------------------------------
    def of(self, kind):
        return [e for e in self.events if e.get("kind") == kind]

    def count(self, kind):
        return len(self.of(kind))

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __repr__(self):
        where = self.path if self.path is not None else "memory"
        return f"<RunLedger {where}: {self._seq} events>"


class NullLedger:
    """Disabled ledger: every hook is a no-op. Instrumented code tests
    ``ledger.enabled`` before assembling anything expensive."""

    enabled = False
    clock = None
    path = None
    events = ()
    listeners = ()

    def emit(self, kind, **fields):
        return None

    def flush(self):
        pass

    def close(self):
        pass

    def of(self, kind):
        return []

    def count(self, kind):
        return 0

    def __len__(self):
        return 0

    def __iter__(self):
        return iter(())

    def __repr__(self):
        return "<NullLedger>"


#: The process-wide disabled ledger every context defaults to.
NULL_LEDGER = NullLedger()


# ----------------------------------------------------------------------
# reading and validation
# ----------------------------------------------------------------------
def read_ledger(path):
    """Parse a ledger file into ``(events, problems)``.

    Tolerates exactly one torn line at the very end of the file (the
    only tear a single-write append stream can suffer); a torn tail is
    reported as ``"torn tail: …"`` in ``problems`` but any *interior*
    unparseable line is a real problem. Callers that only want the
    events can ignore ``problems``; :func:`validate_events` layers the
    schema checks on top.
    """
    events = []
    problems = []
    with open(path, "rb") as handle:
        raw = handle.read()
    lines = raw.split(b"\n")
    trailing_newline = raw.endswith(b"\n")
    if trailing_newline:
        lines = lines[:-1]
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            event = json.loads(line.decode("utf-8", errors="replace"))
            if not isinstance(event, dict):
                raise ValueError("event is not an object")
        except ValueError as exc:
            is_tail = index == len(lines) - 1 and not trailing_newline
            label = "torn tail" if is_tail else f"line {index + 1}"
            problems.append(f"{label}: {exc}")
            continue
        events.append(event)
    return events, problems


def validate_events(events):
    """``obs/v1`` schema problems for a parsed event list (empty list
    when every event validates): envelope fields present and typed,
    the schema tag right, and ``seq`` strictly increasing."""
    problems = []
    last_seq = 0
    for position, event in enumerate(events):
        where = f"event {position + 1}"
        for field in REQUIRED_FIELDS:
            if field not in event:
                problems.append(f"{where}: missing {field!r}")
        schema = event.get("schema")
        if schema is not None and schema != LEDGER_SCHEMA:
            problems.append(
                f"{where}: schema {schema!r} != {LEDGER_SCHEMA!r}"
            )
        kind = event.get("kind")
        if kind is not None and (not isinstance(kind, str) or not kind):
            problems.append(f"{where}: kind must be a non-empty string")
        for field in ("wall_s", "sim_time_s"):
            value = event.get(field)
            if value is not None and not isinstance(value, (int, float)):
                problems.append(f"{where}: {field} must be numeric")
        seq = event.get("seq")
        if isinstance(seq, int):
            if seq <= last_seq:
                problems.append(
                    f"{where}: seq {seq} not increasing (last {last_seq})"
                )
            last_seq = seq
        elif seq is not None:
            problems.append(f"{where}: seq must be an integer")
    return problems
