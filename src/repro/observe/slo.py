"""The declarative SLO/gate engine.

Until now every regression gate in the repo was bespoke code: the
kernels bench asserts its 3.0× speedup floor inline, the calibration
bench hard-codes its 1.05×/25× drift gates, ``report --compare`` keeps
an ``EXACT_FIELDS`` tuple for bit-exact fields. This module turns all
of them into *data*: a ruleset is a list of

    {name, metric, comparator, threshold, severity, against, required}

rules evaluated against any target — a ``trace/v2`` bench/run envelope
or an ``obs/v1`` run ledger — optionally relative to a baseline of the
same shape. The committed ``slo/default.yaml`` re-expresses the
existing gates declaratively; ``repro report --slo RULES TARGET``
evaluates and exits nonzero on breach.

Rule grammar
------------
``metric`` selects a value from the target:

- ``results.<dotted.path>`` / ``params.<dotted.path>`` — traverse the
  envelope's ``results``/``params`` block. A path segment applied to a
  *list of rows* maps over the rows; the aggregators ``max``, ``min``,
  ``sum``, ``mean``, ``count``, ``last`` reduce a list; a segment
  containing ``*`` matches dict keys by glob and yields the sub-dict
  of matches (compared elementwise).
- ``series:<name>{label=value,…}.peak|last`` — resolve metric series
  via :func:`repro.metrics.find_series`; multiple matching series
  yield a dict keyed by their sorted labels (compared elementwise).
- ``ledger.count`` / ``ledger.count:<kind>`` / ``ledger.parse_errors``
  / ``ledger.schema_problems`` — ledger stream facts.

``comparator`` is one of ``<= < >= > == !=`` and ``threshold`` the
bound. ``against`` is ``value`` (default: compare the resolved value),
``baseline-ratio`` (compare ``target/baseline``, the drift-gate shape)
or ``baseline-equal`` (compare the *count of mismatches* against the
baseline — the EXACT_FIELDS shape, normally ``<= 0``). ``severity``
``breach`` (default) fails the gate; ``warn`` only reports. A rule
whose metric is absent in the target is *skipped*, not breached — one
committed ruleset evaluates against envelopes of any bench — unless
``required: true``.

Rulesets load from JSON or from a small flat YAML subset (top-level
``rules:`` list of ``- key: value`` maps) parsed here directly, so the
gate engine works on CI images without PyYAML.
"""

from __future__ import annotations

import fnmatch
import json
import operator
import re
from dataclasses import dataclass, field

from repro.metrics import find_series, series_last, series_peak

COMPARATORS = {
    "<=": operator.le,
    "<": operator.lt,
    ">=": operator.ge,
    ">": operator.gt,
    "==": operator.eq,
    "!=": operator.ne,
}

#: Aggregator segments usable at the end of a results/params path.
AGGREGATORS = {
    "max": lambda vs: max(vs),
    "min": lambda vs: min(vs),
    "sum": lambda vs: sum(vs),
    "mean": lambda vs: sum(vs) / len(vs),
    "count": lambda vs: len(vs),
    "last": lambda vs: vs[-1],
}

_SERIES_RE = re.compile(
    r"^series:(?P<name>[^{.]+)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\.(?P<reducer>peak|last)$"
)


@dataclass(frozen=True)
class SloRule:
    """One declarative gate."""

    name: str
    metric: str
    comparator: str
    threshold: float
    severity: str = "breach"
    against: str = "value"
    required: bool = False

    def __post_init__(self):
        if self.comparator not in COMPARATORS:
            raise ValueError(
                f"rule {self.name!r}: comparator must be one of "
                f"{sorted(COMPARATORS)}, got {self.comparator!r}"
            )
        if self.severity not in ("breach", "warn"):
            raise ValueError(
                f"rule {self.name!r}: severity must be 'breach' or "
                f"'warn', got {self.severity!r}"
            )
        if self.against not in ("value", "baseline-ratio",
                                "baseline-equal"):
            raise ValueError(
                f"rule {self.name!r}: against must be 'value', "
                f"'baseline-ratio' or 'baseline-equal', got "
                f"{self.against!r}"
            )


@dataclass
class Verdict:
    """Outcome of one rule against one target."""

    rule: SloRule
    #: The compared value (worst element for dict selections); None
    #: when the rule was skipped.
    value: object = None
    #: True = pass, False = fail, None = skipped (metric absent).
    ok: object = None
    note: str = ""
    details: dict = field(default_factory=dict)

    @property
    def status(self):
        if self.ok is None:
            return "skip"
        if self.ok:
            return "pass"
        return self.rule.severity


# ----------------------------------------------------------------------
# ruleset loading
# ----------------------------------------------------------------------
def load_ruleset(path):
    """Load a ruleset file into its raw scoped form: ``{scope:
    [entry, …]}``. The flat YAML subset groups entries under top-level
    ``<scope>:`` headers (``rules:`` for SLO gates, ``history:`` for
    the run-history trend rules — see
    :mod:`repro.observe.history`); a JSON file is either that dict
    shape already or a bare list (treated as the ``rules`` scope)."""
    with open(path) as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith(("{", "[")):
        payload = json.loads(text)
    else:
        payload = _parse_flat_yaml(text)
    if isinstance(payload, list):
        payload = {"rules": payload}
    return payload


def load_rules(path):
    """Load a ruleset file (JSON, or the flat YAML subset documented
    in the module docstring) into a list of :class:`SloRule` — the
    ``rules`` scope only; other scopes (``history:``) have their own
    loaders."""
    payload = load_ruleset(path).get("rules", [])
    rules = []
    for entry in payload:
        rules.append(SloRule(
            name=entry["name"],
            metric=entry["metric"],
            comparator=entry["comparator"],
            threshold=entry["threshold"],
            severity=entry.get("severity", "breach"),
            against=entry.get("against", "value"),
            required=bool(entry.get("required", False)),
        ))
    if not rules:
        raise ValueError(f"{path}: no rules found")
    return rules


def _parse_flat_yaml(text):
    """Parse the flat YAML subset rulesets use: top-level ``<scope>:``
    headers (``rules:``, ``history:``, …) each followed by ``- key:
    value`` list items, scalars only, ``#`` comments. Entries before
    any header land in the default ``rules`` scope. Deliberately tiny
    — no dependency on PyYAML, identical behaviour everywhere."""
    scopes = {}
    scope = "rules"
    current = None
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip() if "#" in raw else raw.rstrip()
        stripped = line.strip()
        if not stripped:
            continue
        # An unindented bare `name:` line opens a new scope; entry
        # keys are always indented under their `- ` item, so this
        # cannot be confused with a rule field.
        if (not line[0].isspace() and stripped.endswith(":")
                and not stripped.startswith("- ")
                and ":" not in stripped[:-1]):
            scope = stripped[:-1].strip()
            scopes.setdefault(scope, [])
            current = None
            continue
        if stripped.startswith("- "):
            current = {}
            scopes.setdefault(scope, []).append(current)
            stripped = stripped[2:].strip()
            if not stripped:
                continue
        if current is None:
            raise ValueError(
                f"unexpected line outside a rule entry: {raw!r}"
            )
        key, sep, value = stripped.partition(":")
        if not sep:
            raise ValueError(f"expected 'key: value', got {raw!r}")
        current[key.strip()] = _yaml_scalar(value.strip())
    scopes.setdefault("rules", [])
    return scopes


def _yaml_scalar(value):
    if value == "":
        return None
    try:
        return json.loads(value)
    except ValueError:
        pass
    lowered = value.lower()
    if lowered in ("true", "yes"):
        return True
    if lowered in ("false", "no"):
        return False
    if len(value) >= 2 and value[0] == value[-1] and value[0] in "'\"":
        return value[1:-1]
    return value


# ----------------------------------------------------------------------
# target loading
# ----------------------------------------------------------------------
def load_slo_source(target):
    """Normalize an SLO target into one evaluable source dict.

    ``target`` is a path to a ``trace/v2`` envelope (JSON), a path to
    an ``obs/v1`` ledger (JSONL), or an already-loaded dict. Ledgers
    are summarized into a synthetic ``results`` block (event totals
    per kind, parse/schema problem counts) so results-rules and
    ``ledger.*`` selectors both work on them.
    """
    from repro.observe.ledger import read_ledger, validate_events

    if isinstance(target, dict):
        if "kind" in target and "ledger" in target:
            return target  # already a normalized source — pass through
        return {
            "kind": "envelope",
            "results": target.get("results") or {},
            "params": target.get("params") or {},
            "metrics": target.get("metrics"),
            "ledger": None,
            "ledger_problems": [],
        }
    try:
        with open(target) as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict):
            raise ValueError("not an envelope")
    except ValueError:
        events, problems = read_ledger(target)
        schema_problems = validate_events(events)
        kinds = {}
        for event in events:
            kind = event.get("kind", "?")
            kinds[kind] = kinds.get(kind, 0) + 1
        return {
            "kind": "ledger",
            "results": {
                "ledger_events": len(events),
                "ledger_parse_errors": len(problems),
                "ledger_schema_problems": len(schema_problems),
                **{f"events_{kind}": count
                   for kind, count in sorted(kinds.items())},
            },
            "params": {},
            "metrics": None,
            "ledger": events,
            "ledger_problems": problems,
        }
    return load_slo_source(payload)


# ----------------------------------------------------------------------
# metric resolution
# ----------------------------------------------------------------------
def resolve_metric(spec, source):
    """Resolve a metric spec against a normalized source; returns a
    scalar, a dict (elementwise selections), or None when absent."""
    if spec.startswith("series:"):
        return _resolve_series(spec, source)
    if spec == "ledger.count":
        events = source.get("ledger")
        return None if events is None else len(events)
    if spec.startswith("ledger.count:"):
        events = source.get("ledger")
        if events is None:
            return None
        kind = spec.split(":", 1)[1]
        return sum(1 for e in events if e.get("kind") == kind)
    if spec == "ledger.parse_errors":
        if source.get("ledger") is None:
            return None
        return len(source.get("ledger_problems") or ())
    if spec == "ledger.schema_problems":
        from repro.observe.ledger import validate_events

        events = source.get("ledger")
        return None if events is None else len(validate_events(events))
    for block in ("results", "params"):
        if spec == block or spec.startswith(block + "."):
            path = spec[len(block) + 1:] if spec != block else ""
            return _resolve_path(source.get(block), path)
    return None


def _resolve_series(spec, source):
    match = _SERIES_RE.match(spec)
    if match is None:
        raise ValueError(f"bad series spec: {spec!r}")
    metrics = source.get("metrics")
    if not metrics:
        return None
    labels = {}
    if match.group("labels"):
        for pair in match.group("labels").split(","):
            key, _, value = pair.partition("=")
            labels[key.strip()] = value.strip()
    series = find_series(metrics, match.group("name"), **labels)
    if not series:
        return None
    reducer = series_peak if match.group("reducer") == "peak" else series_last
    if len(series) == 1:
        return reducer(series[0])
    return {
        json.dumps(entry.get("labels", {}), sort_keys=True): reducer(entry)
        for entry in series
    }


def _resolve_path(value, path):
    if value is None:
        return None
    if not path:
        return value
    segments = path.split(".")
    for position, segment in enumerate(segments):
        if value is None:
            return None
        is_last = position == len(segments) - 1
        if isinstance(value, list):
            if is_last and segment in AGGREGATORS:
                values = [v for v in value if v is not None]
                return AGGREGATORS[segment](values) if values else None
            mapped = [
                item.get(segment) for item in value
                if isinstance(item, dict) and segment in item
            ]
            value = mapped if mapped else None
        elif isinstance(value, dict):
            if "*" in segment or "?" in segment:
                matches = {
                    key: value[key] for key in sorted(value)
                    if fnmatch.fnmatchcase(key, segment)
                }
                if not matches:
                    return None
                if is_last:
                    return matches
                value = matches
            else:
                value = value.get(segment)
        else:
            return None
    return value


# ----------------------------------------------------------------------
# evaluation
# ----------------------------------------------------------------------
def evaluate_slo(rules, target, baseline=None):
    """Evaluate a ruleset; returns a list of :class:`Verdict`.

    ``target`` / ``baseline`` are anything :func:`load_slo_source`
    accepts. Baseline-relative rules are skipped when no baseline is
    given (unless ``required``).
    """
    source = load_slo_source(target)
    base_source = load_slo_source(baseline) if baseline is not None else None
    verdicts = []
    for rule in rules:
        verdicts.append(_evaluate_rule(rule, source, base_source))
    return verdicts


def _evaluate_rule(rule, source, base_source):
    value = resolve_metric(rule.metric, source)
    if value is None or (isinstance(value, dict) and not value):
        if rule.required:
            return Verdict(rule, ok=False,
                           note="required metric absent in target")
        return Verdict(rule, ok=None, note="metric absent; skipped")
    if rule.against == "value":
        return _compare(rule, value)
    if base_source is None:
        if rule.required:
            return Verdict(rule, ok=False,
                           note="baseline required but not given")
        return Verdict(rule, ok=None, note="no baseline; skipped")
    base = resolve_metric(rule.metric, base_source)
    if base is None or (isinstance(base, dict) and not base):
        if rule.required:
            return Verdict(rule, ok=False,
                           note="required metric absent in baseline")
        return Verdict(rule, ok=None,
                       note="metric absent in baseline; skipped")
    if rule.against == "baseline-equal":
        return _compare_equal(rule, value, base)
    return _compare_ratio(rule, value, base)


def _as_items(value):
    return value.items() if isinstance(value, dict) else [("", value)]


def _compare(rule, value):
    compare = COMPARATORS[rule.comparator]
    failing = {}
    worst = None
    for key, item in _as_items(value):
        try:
            ok = bool(compare(item, rule.threshold))
        except TypeError:
            ok = False
        if not ok:
            failing[key] = item
        worst = item if worst is None else _worse(rule, worst, item)
    if failing:
        shown = failing.get("", next(iter(failing.values())))
        return Verdict(
            rule, value=shown, ok=False, details=dict(failing),
            note=(f"{len(failing)} element(s) violate"
                  if isinstance(value, dict) else ""),
        )
    return Verdict(rule, value=worst, ok=True)


def _worse(rule, first, second):
    """The element closer to violating the rule (for reporting)."""
    try:
        if rule.comparator in ("<=", "<", "==", "!="):
            return max(first, second)
        return min(first, second)
    except TypeError:
        return second


def _compare_ratio(rule, value, base):
    values = dict(_as_items(value))
    bases = dict(_as_items(base))
    ratios = {}
    for key in values:
        if key not in bases:
            continue
        try:
            denominator = float(bases[key])
            if denominator == 0.0:
                # 0 -> 0 is flat (ratio 1); 0 -> x is infinite drift.
                ratios[key] = (
                    1.0 if float(values[key]) == 0.0 else float("inf")
                )
            else:
                ratios[key] = float(values[key]) / denominator
        except (TypeError, ValueError):
            continue
    if not ratios:
        if rule.required:
            return Verdict(rule, ok=False,
                           note="no comparable baseline elements")
        return Verdict(rule, ok=None,
                       note="no comparable baseline elements; skipped")
    verdict = _compare(rule, ratios if len(ratios) > 1 else
                       next(iter(ratios.values())))
    verdict.note = (verdict.note + " (target/baseline ratio)").strip()
    return verdict


def _compare_equal(rule, value, base):
    values = dict(_as_items(value))
    bases = dict(_as_items(base))
    shared = [key for key in values if key in bases]
    if not shared:
        return Verdict(rule, ok=None,
                       note="no shared elements with baseline; skipped")
    mismatches = {
        key: (values[key], bases[key])
        for key in shared if values[key] != bases[key]
    }
    verdict = _compare(rule, len(mismatches))
    verdict.details = {
        key: f"{new!r} != baseline {old!r}"
        for key, (new, old) in mismatches.items()
    }
    verdict.note = (f"{len(mismatches)} mismatch(es) over "
                    f"{len(shared)} shared element(s)")
    return verdict


def has_breach(verdicts):
    """True iff any failed verdict has breach severity."""
    return any(
        v.ok is False and v.rule.severity == "breach" for v in verdicts
    )


def render_slo(verdicts, title="SLO evaluation"):
    """ASCII table of verdicts, breaches first."""
    lines = [f"### {title} — {len(verdicts)} rules"]
    order = {"breach": 0, "warn": 1, "pass": 2, "skip": 3}
    for verdict in sorted(verdicts, key=lambda v: order[v.status]):
        rule = verdict.rule
        shown = verdict.value
        if isinstance(shown, float):
            shown = f"{shown:.6g}"
        lines.append(
            f"  [{verdict.status:6s}] {rule.name}: "
            f"{rule.metric} {rule.comparator} {rule.threshold}"
            + (f" — value {shown}" if verdict.ok is not None else "")
            + (f" ({verdict.note})" if verdict.note else "")
        )
        for key, detail in sorted(verdict.details.items()):
            if verdict.ok is False:
                lines.append(f"           {key or rule.metric}: {detail}")
    breaches = sum(1 for v in verdicts if v.status == "breach")
    warns = sum(1 for v in verdicts if v.status == "warn")
    passes = sum(1 for v in verdicts if v.status == "pass")
    skips = sum(1 for v in verdicts if v.status == "skip")
    lines.append(
        f"  {breaches} breach, {warns} warn, {passes} pass, {skips} skipped"
    )
    return "\n".join(lines)
