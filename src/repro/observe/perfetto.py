"""Chrome trace-event / Perfetto export.

Renders a run — an exported :class:`~repro.trace.Tracer` span tree, an
``obs/v1`` run ledger, or both — into the standard Chrome trace-event
JSON (``{"traceEvents": [...]}``) that ``ui.perfetto.dev`` and
``chrome://tracing`` load directly.

Track mapping (DESIGN.md §4k):

- the **driver** process is one pid (from the ledger's ``ledger_open``
  event when available); its span tree lands on tid 1 as nested ``X``
  (complete) events, point events as ``i`` instants;
- the **wave scheduler** gets tid 2 on the driver pid: one ``X`` event
  per dispatched wave (args: worker, size, stage);
- every forked :class:`~repro.dataflow.backend.ProcessPoolBackend`
  child is its own pid track, one ``X`` event per task from its
  ``task_fork``/``task_collect`` ledger pair (args: partition,
  attempt, stage, status) — a child SIGKILLed mid-task renders with
  status ``worker-lost``, closed at the collect that discovered it;
- throttled ``metric`` events become ``C`` counter tracks;
- recovery events, optimizer decisions, and run start/end become
  ``i`` instants on the driver track.

Timestamps are microseconds. Span trees use their own epoch
(``wall_offset_s`` of the root); ledgers use the ledger epoch — when
both sources are given, spans are preferred *from the ledger* (one
timebase) and the exported tree is only used if the ledger carries no
span events (e.g. the run was ledgered without a tracer).
"""

from __future__ import annotations

import json

#: tid of the driver's span track / the wave-scheduler track.
DRIVER_TID = 1
WAVES_TID = 2

#: Ledger kinds rendered as ``i`` instants on the driver track.
_INSTANT_KINDS = (
    "ledger_open", "run_meta", "stage_plan", "optimizer_decision",
    "recovery", "trace_point", "run_end",
)


def _us(seconds):
    return round(float(seconds or 0.0) * 1e6, 3)


def _meta(pid, tid, name, kind="thread_name"):
    return {
        "ph": "M", "name": kind, "pid": pid, "tid": tid,
        "args": {"name": name},
    }


# ----------------------------------------------------------------------
# span-tree source
# ----------------------------------------------------------------------
def _events_from_trace(trace, pid):
    """``X``/``i`` events for an exported span tree (dict form)."""
    events = []

    def walk(span):
        args = {**span.get("attrs", {}), **span.get("counters", {})}
        args["status"] = span.get("status", "ok")
        events.append({
            "name": span.get("name", "span"),
            "ph": "X",
            "ts": _us(span.get("wall_offset_s")),
            "dur": _us(span.get("wall_s")),
            "pid": pid,
            "tid": DRIVER_TID,
            "args": args,
        })
        for point in span.get("events", ()):
            events.append({
                "name": point.get("event", "event"),
                "ph": "i",
                "s": "t",
                "ts": _us(span.get("wall_offset_s")),
                "pid": pid,
                "tid": DRIVER_TID,
                "args": {k: v for k, v in point.items() if k != "event"},
            })
        for child in span.get("children", ()):
            walk(child)

    walk(trace)
    return events


# ----------------------------------------------------------------------
# ledger source
# ----------------------------------------------------------------------
def _events_from_ledger(ledger_events, pid):
    """Events for an ``obs/v1`` ledger: driver spans (reconstructed
    from start/end pairs), wave track, child-pid task tracks, counter
    samples, and instants."""
    events = []
    span_stack = []
    open_wave = None
    forks = {}
    child_pids = []
    last_wall = 0.0
    for event in ledger_events:
        wall = float(event.get("wall_s") or 0.0)
        last_wall = max(last_wall, wall)
        kind = event.get("kind")
        if kind == "span_start":
            span_stack.append((event.get("name", "span"), wall,
                               event.get("attrs") or {}))
        elif kind == "span_end":
            name = event.get("name", "span")
            while span_stack:
                open_name, start, attrs = span_stack.pop()
                closes = open_name == name
                events.append({
                    "name": open_name,
                    "ph": "X",
                    "ts": _us(start),
                    "dur": _us(wall - start),
                    "pid": pid,
                    "tid": DRIVER_TID,
                    "args": {
                        **attrs,
                        "status": (event.get("status", "ok")
                                   if closes else "implicit-close"),
                    },
                })
                if closes:
                    break
        elif kind == "wave_start":
            open_wave = (event, wall)
        elif kind == "wave_end":
            if open_wave is not None:
                start_event, start = open_wave
                open_wave = None
                events.append({
                    "name": f"wave w{start_event.get('worker')}",
                    "ph": "X",
                    "ts": _us(start),
                    "dur": _us(wall - start),
                    "pid": pid,
                    "tid": WAVES_TID,
                    "args": {
                        "worker": start_event.get("worker"),
                        "size": start_event.get("size"),
                        "stage": start_event.get("what"),
                        "results": event.get("results"),
                    },
                })
        elif kind == "task_fork":
            child = event.get("pid")
            forks[child] = (event, wall)
            if child not in child_pids:
                child_pids.append(child)
        elif kind == "task_collect":
            child = event.get("pid")
            forked = forks.pop(child, None)
            start = forked[1] if forked else wall
            fork_event = forked[0] if forked else {}
            events.append({
                "name": f"task p{event.get('partition')}",
                "ph": "X",
                "ts": _us(start),
                "dur": _us(wall - start),
                "pid": child,
                "tid": 0,
                "args": {
                    "partition": event.get("partition"),
                    "attempt": fork_event.get("attempt"),
                    "stage": fork_event.get("what"),
                    "status": event.get("status", "ok"),
                },
            })
        elif kind == "metric":
            events.append({
                "name": _counter_name(event),
                "ph": "C",
                "ts": _us(wall),
                "pid": pid,
                "args": {"value": event.get("value")},
            })
        elif kind in _INSTANT_KINDS:
            name = kind
            if kind == "recovery":
                name = f"recovery:{event.get('event', '?')}"
            elif kind == "trace_point":
                name = event.get("name", "event")
            events.append({
                "name": name,
                "ph": "i",
                "s": "p",
                "ts": _us(wall),
                "pid": pid,
                "tid": DRIVER_TID,
                "args": {
                    k: v for k, v in event.items()
                    if k not in ("schema", "seq", "wall_s", "kind")
                },
            })
    # A torn ledger (driver SIGKILLed) leaves spans, a wave, and forked
    # tasks open: close them at the last observed timestamp so the
    # export still loads and shows exactly how far the run got.
    while span_stack:
        open_name, start, attrs = span_stack.pop()
        events.append({
            "name": open_name, "ph": "X", "ts": _us(start),
            "dur": _us(last_wall - start), "pid": pid, "tid": DRIVER_TID,
            "args": {**attrs, "status": "torn"},
        })
    if open_wave is not None:
        start_event, start = open_wave
        events.append({
            "name": f"wave w{start_event.get('worker')}", "ph": "X",
            "ts": _us(start), "dur": _us(last_wall - start),
            "pid": pid, "tid": WAVES_TID,
            "args": {"worker": start_event.get("worker"),
                     "size": start_event.get("size"),
                     "stage": start_event.get("what"), "status": "torn"},
        })
    for child, (fork_event, start) in forks.items():
        events.append({
            "name": f"task p{fork_event.get('partition')}", "ph": "X",
            "ts": _us(start), "dur": _us(last_wall - start),
            "pid": child, "tid": 0,
            "args": {"partition": fork_event.get("partition"),
                     "attempt": fork_event.get("attempt"),
                     "stage": fork_event.get("what"), "status": "torn"},
        })
    return events, child_pids


def _counter_name(event):
    labels = event.get("labels") or {}
    if not labels:
        return str(event.get("metric", "metric"))
    rendered = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{event.get('metric', 'metric')}{{{rendered}}}"


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------
def chrome_trace(trace=None, ledger_events=None):
    """Build the Chrome trace-event payload from an exported span tree
    and/or a parsed ledger event list. At least one must be given."""
    if trace is None and ledger_events is None:
        raise ValueError("chrome_trace needs a trace, a ledger, or both")
    if trace is not None and hasattr(trace, "export"):
        trace = trace.export()
    elif trace is not None and hasattr(trace, "to_dict"):
        trace = trace.to_dict()
    pid = 0
    if ledger_events:
        for event in ledger_events:
            if event.get("kind") == "ledger_open" and event.get("pid"):
                pid = int(event["pid"])
                break
    events = [
        _meta(pid, DRIVER_TID, "vista driver", kind="process_name"),
        _meta(pid, DRIVER_TID, "driver spans"),
        _meta(pid, WAVES_TID, "wave scheduler"),
    ]
    child_pids = []
    ledger_has_spans = any(
        e.get("kind") == "span_start" for e in ledger_events or ()
    )
    if ledger_events:
        ledger_rendered, child_pids = _events_from_ledger(
            ledger_events, pid
        )
        events.extend(ledger_rendered)
    if trace is not None and not ledger_has_spans:
        events.extend(_events_from_trace(trace, pid))
    for child in child_pids:
        events.append(_meta(child, 0, f"forked worker {child}",
                            kind="process_name"))
        events.append(_meta(child, 0, "wave tasks"))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.observe.perfetto",
                      "ledger_schema": "obs/v1"},
    }


def validate_chrome_trace(payload):
    """Problems with a trace-event payload (empty list when valid):
    the structural checks the CI ``observe`` job runs on exports."""
    problems = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents missing or empty"]
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "i", "M", "C", "B", "E"):
            problems.append(f"{where}: unknown phase {ph!r}")
        if "name" not in event:
            problems.append(f"{where}: missing name")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        if not isinstance(event.get("pid", 0), int):
            problems.append(f"{where}: pid must be an integer")
    return problems


def write_chrome_trace(path, trace=None, ledger=None):
    """Export to ``path``. ``ledger`` is a :class:`~repro.observe.
    ledger.RunLedger`, a parsed event list, or a ledger file path
    (read tolerantly, so exporting a killed run's ledger works)."""
    ledger_events = None
    if ledger is not None:
        if isinstance(ledger, (list, tuple)):
            ledger_events = list(ledger)
        elif hasattr(ledger, "events"):
            ledger_events = list(ledger.events)
        else:
            from repro.observe.ledger import read_ledger

            ledger_events, _ = read_ledger(ledger)
    payload = chrome_trace(trace=trace, ledger_events=ledger_events)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return payload
