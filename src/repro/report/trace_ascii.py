"""Flame-style ASCII rendering of Vista trace span trees.

:func:`render_trace` turns a :class:`~repro.trace.Span` (or its
``to_dict()`` export, so saved JSON traces render identically) into an
indented tree where each line carries a time bar positioned by the
span's wall offset and scaled by its duration relative to the root —
a terminal flame graph. Counters are printed human-formatted (bytes in
KB/MB, per-operator times in ms); events and nested attribute tables
(the executor's Eq. 16 estimate-vs-measured ``sizing`` comparison, the
optimizer's ``chosen`` configuration) appear as indented detail lines.
"""

from __future__ import annotations


def _human_bytes(value):
    value = float(value)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{int(value)}B"
            return f"{value:.1f}{unit}"
        value /= 1024.0


def _human_duration(seconds):
    if seconds is None:
        return "?"
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


def _fmt_value(key, value):
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, (int, float)) and "bytes" in key:
        return _human_bytes(value)
    if isinstance(value, float):
        if key.startswith("op_s:") or key.endswith("_s"):
            return _human_duration(value)
        return f"{value:.4g}"
    return str(value)


def _fmt_counters(counters):
    parts = []
    for key in sorted(counters):
        if key.startswith("op_s:"):
            continue  # summarized separately
        parts.append(f"{key}={_fmt_value(key, counters[key])}")
    return " ".join(parts)


def _scalar_attrs(attrs):
    parts = []
    for key, value in attrs.items():
        if isinstance(value, dict):
            continue
        parts.append(f"{key}={_fmt_value(key, value)}")
    return " ".join(parts)


def _sizing_lines(sizing, indent):
    """Eq. 16 estimate vs. measured bytes, one line per layer."""
    lines = []
    for layer, entry in sizing.items():
        est = entry.get("estimated_bytes")
        meas = entry.get("measured_bytes")
        ratio = ""
        if est and meas:
            ratio = f" (est/meas x{est / meas:.2f})"
        meas_text = _human_bytes(meas) if meas is not None else "?"
        lines.append(
            f"{indent}~ sizing {layer}: est={_human_bytes(est)} "
            f"meas={meas_text}{ratio}"
        )
    return lines


def _dict_attr_lines(name, value, indent):
    if name == "sizing":
        return _sizing_lines(value, indent)
    body = " ".join(
        f"{key}={_fmt_value(key, val)}" for key, val in value.items()
    )
    return [f"{indent}~ {name}: {body}"]


def _flatten(node, depth=0):
    yield node, depth
    for child in node.get("children", ()):
        yield from _flatten(child, depth + 1)


def render_trace(trace, width=30, show_events=True):
    """Render a span tree as a flame-style ASCII summary.

    ``trace`` is a :class:`~repro.trace.Span`, a :class:`~repro.trace.
    Tracer` (its root is rendered), or an exported ``to_dict`` tree.
    ``width`` is the time-bar width in characters.
    """
    if hasattr(trace, "export"):          # a Tracer
        root = trace.export()
    elif hasattr(trace, "to_dict"):       # a Span
        root = trace.to_dict()
    else:                                  # an exported dict
        root = trace
    if root is None:
        return "(no trace recorded)"

    nodes = list(_flatten(root))
    total = root.get("wall_s") or 0.0
    if total <= 0:
        total = max(
            (n.get("wall_offset_s", 0.0) + (n.get("wall_s") or 0.0)
             for n, _ in nodes),
            default=0.0,
        ) or 1.0
    label_width = max(len("  " * d + n["name"]) for n, d in nodes)

    lines = [
        f"### trace: {root['name']} — total {_human_duration(total)}",
    ]
    for node, depth in nodes:
        indent = "  " * depth
        label = f"{indent}{node['name']}"
        wall = node.get("wall_s") or 0.0
        offset = node.get("wall_offset_s", 0.0)
        pad = min(width - 1, int(width * offset / total))
        fill = max(1, int(round(width * wall / total)))
        fill = min(fill, width - pad)
        bar = " " * pad + "#" * fill
        status = node.get("status", "ok")
        flag = "" if status == "ok" else f" !{status}"
        details = " ".join(
            part for part in (
                _scalar_attrs(node.get("attrs", {})),
                _fmt_counters(node.get("counters", {})),
            ) if part
        )
        lines.append(
            f"{label.ljust(label_width)} {_human_duration(wall):>8} "
            f"|{bar.ljust(width)}|{flag}"
            + (f" {details}" if details else "")
        )
        detail_indent = "  " * (depth + 1)
        for key, value in node.get("attrs", {}).items():
            if isinstance(value, dict):
                lines.extend(_dict_attr_lines(key, value, detail_indent))
        if show_events:
            for event in node.get("events", ()):
                fields = " ".join(
                    f"{k}={_fmt_value(k, v)}"
                    for k, v in event.items()
                    if k not in ("event", "sim_time_s")
                )
                lines.append(
                    f"{detail_indent}* {event.get('event', '?')} "
                    f"@sim={event.get('sim_time_s', 0.0):.3f}s"
                    + (f" {fields}" if fields else "")
                )

    op_lines = _op_summary(nodes)
    if op_lines:
        lines.append("")
        lines.append("per-operator CNN time:")
        lines.extend(op_lines)
    return "\n".join(lines)


def _op_summary(nodes):
    """Aggregate ``op_s:<name>`` counters across the tree into one
    ranked per-operator table."""
    totals = {}
    for node, _ in nodes:
        for key, value in node.get("counters", {}).items():
            if key.startswith("op_s:"):
                op = key[len("op_s:"):]
                totals[op] = totals.get(op, 0.0) + value
    if not totals:
        return []
    peak = max(totals.values()) or 1.0
    name_width = max(len(op) for op in totals)
    lines = []
    for op, seconds in sorted(
            totals.items(), key=lambda kv: kv[1], reverse=True):
        bar = "#" * max(1, int(round(20 * seconds / peak)))
        lines.append(
            f"  {op.ljust(name_width)} {_human_duration(seconds):>8} {bar}"
        )
    return lines
