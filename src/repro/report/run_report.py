"""Run reports: memory waterlines, crash attribution, regression gates.

Consumes the ``metrics/v1`` block produced by
:class:`~repro.metrics.MetricsRegistry` (standalone, or embedded in a
``trace/v2`` benchmark envelope) and renders three things:

- **Waterlines** — per-region, per-worker occupancy timelines as ASCII
  charts with the Algorithm 1 budget (= crash threshold) and the
  optimizer's predicted peak drawn in, so one glance shows how close a
  run sailed to each Section 4.1 cliff.
- **Crash attribution** — when a run crashed, the ``crash_total``
  counters plus the offending region's last gauge sample name the
  Section 4.1 scenario, the worker, and the over-budget occupancy.
- **Regression gates** — :func:`compare` diffs two exports (benchmark
  envelopes or raw metrics JSON) field by field and flags any metric
  that moved past a gate factor in its bad direction; the CLI turns
  that into a nonzero exit for CI.
"""

from __future__ import annotations

import json

from repro.metrics import find_series, series_last, series_peak

#: Section 4.1 crash scenarios, keyed by the exception class name the
#: memory model (or the Ignite-style storage manager) raises.
SCENARIOS = {
    "DLExecutionMemoryExceeded": {
        "scenario": "(1) DL Execution Memory blowup",
        "region": "dl",
        "detail": "cpu model replicas exceeded the memory left outside "
                  "the PD heap; the OS kills the application",
    },
    "UserMemoryExceeded": {
        "scenario": "(2) insufficient User Memory",
        "region": "user",
        "detail": "UDF threads' serialized CNN + feature TensorLists + "
                  "downstream model overflowed User Memory",
    },
    "TransientTaskOOM": {
        "scenario": "(2) insufficient User Memory (transient task OOM)",
        "region": "user",
        "detail": "one task's footprint spiked past User Memory; "
                  "retryable in place via lineage",
    },
    "ExecutionMemoryExceeded": {
        "scenario": "(3) oversized partition in Execution Memory",
        "region": "core",
        "detail": "a join build/probe partition did not fit Core "
                  "Execution Memory",
    },
    "DriverMemoryExceeded": {
        "scenario": "(4) driver ran out of memory",
        "region": "driver",
        "detail": "broadcast/collect materialized more bytes at the "
                  "driver than its heap holds",
    },
    "StorageMemoryExceeded": {
        "scenario": "Ignite-style in-memory Storage overflow",
        "region": "storage",
        "detail": "static memory-only Storage could not hold the cached "
                  "intermediates and cannot spill",
    },
}

#: Substrings marking a ``results`` field where *lower* is better.
LOWER_IS_BETTER = (
    "seconds", "_s", "bytes", "overhead", "retries", "attempts",
    "degrades", "blacklists", "tasks_run", "tasks_total", "sim_",
    "evictions", "misses", "spill",
)

#: Substrings marking a field where *higher* is better.
HIGHER_IS_BETTER = ("speedup", "f1", "accuracy", "hits", "throughput")

#: Substrings marking configuration/capacity fields that are not
#: performance metrics and must never gate.
SKIP_FIELDS = (
    "capacity", "predicted", "budget", "cpu", "partitions", "nodes",
    "seed", "records", "layers", "ticks", "schema", "gate",
)


def _human_bytes(value):
    value = float(value)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{int(value)}B"
            return f"{value:.1f}{unit}"
        value /= 1024.0


def metrics_block(source):
    """Extract the ``metrics/v1`` dict from a registry, a metrics
    export, a ``trace/v2`` envelope, or a JSON file path."""
    if isinstance(source, str):
        with open(source) as handle:
            source = json.load(handle)
    if hasattr(source, "export"):
        source = source.export()
    if source is None:
        return None
    if "series" not in source and "metrics" in source:
        return source["metrics"]
    if "series" in source:
        return source
    return None


# ----------------------------------------------------------------------
# waterlines
# ----------------------------------------------------------------------
def _resample(samples, ticks, width):
    """Level per column: bucket samples by tick, keep each bucket's
    max, carry the level forward through empty buckets (a gauge holds
    its value between samples)."""
    levels = [None] * width
    span = max(1, ticks)
    for _, tick, value in samples:
        column = min(width - 1, int((tick - 1) * width / span))
        if levels[column] is None or value > levels[column]:
            levels[column] = value
    current = 0
    out = []
    for level in levels:
        if level is not None:
            current = level
        out.append(current)
    return out


def render_waterline(series, capacity=None, predicted=None, ticks=None,
                     width=60, height=8, title=None):
    """One ASCII occupancy chart: ``#`` columns for the level, ``===``
    row at the budget (crash threshold), ``---`` row at the optimizer's
    predicted peak."""
    samples = series.get("samples") or []
    peak = series_peak(series) or 0
    top = max(
        peak, capacity or 0, predicted or 0,
        1,
    )
    ticks = ticks or max((s[1] for s in samples), default=1)
    levels = _resample(samples, ticks, width)
    budget_row = (
        height - 1 - int((capacity / top) * (height - 1))
        if capacity else None
    )
    predicted_row = (
        height - 1 - int((predicted / top) * (height - 1))
        if predicted else None
    )
    lines = []
    name = title or series.get("name", "?")
    labels = series.get("labels", {})
    label_text = " ".join(f"{k}={v}" for k, v in sorted(labels.items()))
    lines.append(
        f"{name} [{label_text}] peak={_human_bytes(peak)}"
        + (f" budget={_human_bytes(capacity)}" if capacity else "")
        + (f" predicted={_human_bytes(predicted)}" if predicted else "")
    )
    for row in range(height):
        row_level = top * (height - 1 - row) / (height - 1)
        cells = []
        for level in levels:
            if level >= row_level and level > 0:
                cells.append("#")
            elif row == budget_row:
                cells.append("=")
            elif row == predicted_row:
                cells.append("-")
            else:
                cells.append(" ")
        marker = ""
        if row == budget_row:
            marker = " <= budget/crash"
        elif row == predicted_row:
            marker = " <- predicted"
        axis = _human_bytes(row_level).rjust(8)
        lines.append(f"{axis} |{''.join(cells)}|{marker}")
    lines.append(" " * 9 + "+" + "-" * width + f"+ ticks 1..{ticks}")
    return "\n".join(lines)


def _capacity_for(block, worker, region):
    found = find_series(block, "mem_capacity_bytes", worker=worker,
                        region=region)
    return series_peak(found[0]) if found else None


def _predicted_for(block, region):
    found = find_series(block, "predicted_peak_bytes", region=region)
    return series_peak(found[0]) if found else None


def render_waterlines(source, width=60, height=8, include_storage=True):
    """All non-flat occupancy waterlines in a metrics block, grouped
    per region per worker."""
    block = metrics_block(source)
    if not block:
        return "(no metrics recorded)"
    ticks = block.get("ticks", 1)
    charts = []
    for series in find_series(block, "mem_used_bytes"):
        if not (series_peak(series) or 0):
            continue  # an all-zero region tells nothing
        labels = series.get("labels", {})
        charts.append(render_waterline(
            series,
            capacity=_capacity_for(block, labels.get("worker"),
                                   labels.get("region")),
            predicted=_predicted_for(block, labels.get("region")),
            ticks=ticks, width=width, height=height,
        ))
    if include_storage:
        for series in find_series(block, "storage_cached_bytes"):
            if not (series_peak(series) or 0):
                continue
            labels = series.get("labels", {})
            charts.append(render_waterline(
                series,
                capacity=_capacity_for(block, labels.get("worker"),
                                       "storage"),
                predicted=_predicted_for(block, "storage"),
                ticks=ticks, width=width, height=height,
            ))
    if not charts:
        return "(all occupancy series flat at zero)"
    return "\n\n".join(charts)


# ----------------------------------------------------------------------
# crash attribution
# ----------------------------------------------------------------------
def attribute_crash(source):
    """Attribute a crashed run to its Section 4.1 scenario.

    Finds the ``crash_total`` counter that fired, maps its exception
    label to the scenario, and pulls the offending region's last-
    sampled occupancy and budget from the same block. Returns ``None``
    for a crash-free run.
    """
    block = metrics_block(source)
    if not block:
        return None
    fired = [
        s for s in find_series(block, "crash_total")
        if (s.get("total") or 0) > 0
    ]
    if not fired:
        return None
    crash = max(fired, key=lambda s: s.get("total") or 0)
    labels = crash.get("labels", {})
    exception = labels.get("exception", "?")
    worker = labels.get("worker")
    info = SCENARIOS.get(exception, {
        "scenario": "unknown crash scenario",
        "region": labels.get("region"),
        "detail": "",
    })
    region = info["region"] or labels.get("region")
    gauge_name = (
        "storage_cached_bytes" if region == "storage"
        else "mem_used_bytes"
    )
    gauge_labels = {"worker": worker}
    if gauge_name == "mem_used_bytes":
        gauge_labels["region"] = region
    found = find_series(block, gauge_name, **gauge_labels)
    last = None
    if found and found[0].get("samples"):
        last = found[0]["samples"][-1][2]
    elif found:
        last = found[0].get("last")
    return {
        "exception": exception,
        "scenario": info["scenario"],
        "detail": info.get("detail", ""),
        "region": region,
        "worker": worker,
        "crashes": crash.get("total", 0),
        "last_occupancy_bytes": last,
        # The crashing charge is sampled before the exception unwinds,
        # but cleanup then releases bytes — so the *peak* watermark,
        # not the final sample, is the crash-time occupancy.
        "peak_occupancy_bytes": (
            series_peak(found[0]) if found else None
        ),
        "budget_bytes": _capacity_for(block, worker, region),
        "series": found[0] if found else None,
    }


def render_crash_report(source, width=60, height=8):
    """Human-readable crash attribution with the offending region's
    waterline, or a clean bill of health."""
    attribution = attribute_crash(source)
    if attribution is None:
        return "no crashes recorded"
    lines = [
        f"CRASH: {attribution['exception']} on "
        f"{attribution['worker'] or '?'} — Section 4.1 scenario "
        f"{attribution['scenario']}",
        f"  {attribution['detail']}",
    ]
    peak = attribution["peak_occupancy_bytes"]
    budget = attribution["budget_bytes"]
    if peak is not None and budget:
        verdict = "OVER" if peak > budget else "under"
        lines.append(
            f"  crash-time {attribution['region']} occupancy "
            f"{_human_bytes(peak)} vs budget {_human_bytes(budget)} "
            f"({verdict} budget, x{peak / budget:.2f})"
        )
    if attribution["series"] is not None:
        block = metrics_block(source)
        lines.append("")
        lines.append(render_waterline(
            attribution["series"], capacity=budget,
            predicted=_predicted_for(block, attribution["region"]),
            ticks=block.get("ticks", 1), width=width, height=height,
        ))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# predicted vs observed
# ----------------------------------------------------------------------
def predicted_vs_observed(source):
    """Optimizer prediction vs observed peak per region, as rows of
    ``(region, predicted, observed, ratio)``."""
    block = metrics_block(source)
    if not block:
        return []
    rows = []
    for series in find_series(block, "predicted_peak_bytes"):
        region = series.get("labels", {}).get("region")
        predicted = series_peak(series)
        if region == "storage":
            observed = max(
                (series_peak(s) or 0
                 for s in find_series(block, "storage_cached_bytes")),
                default=0,
            )
        else:
            observed = max(
                (series_peak(s) or 0
                 for s in find_series(block, "mem_used_bytes",
                                      region=region)),
                default=0,
            )
        ratio = (observed / predicted) if predicted else None
        rows.append((region, predicted, observed, ratio))
    return rows


def render_report(source, width=60, height=8):
    """The full run report: header, predicted-vs-observed table,
    waterlines, storage counters, crash attribution."""
    block = metrics_block(source)
    if not block:
        return "(no metrics recorded)"
    lines = [
        f"### run report — {block.get('schema', '?')}, "
        f"{block.get('ticks', 0)} ticks, "
        f"{len(block.get('series', []))} series",
    ]
    rows = predicted_vs_observed(block)
    if rows:
        lines.append("")
        lines.append("predicted vs observed peak per region:")
        for region, predicted, observed, ratio in rows:
            ratio_text = f" (obs/pred x{ratio:.3f})" if ratio else ""
            lines.append(
                f"  {region:8s} predicted={_human_bytes(predicted)} "
                f"observed={_human_bytes(observed)}{ratio_text}"
            )
    totals = {}
    for name in ("storage_hits_total", "storage_misses_total",
                 "storage_evictions_total", "storage_spill_bytes_total",
                 "tasks_total", "task_retries_total", "degrades_total",
                 "blacklists_total", "shuffle_bytes_total",
                 "broadcast_bytes_total"):
        total = sum(s.get("total") or 0 for s in find_series(block, name))
        if total:
            totals[name] = total
    if totals:
        lines.append("")
        lines.append("counters:")
        for name, total in sorted(totals.items()):
            value = (
                _human_bytes(total) if "bytes" in name else str(total)
            )
            lines.append(f"  {name} = {value}")
    lines.append("")
    lines.append(render_waterlines(block, width=width, height=height))
    lines.append("")
    lines.append(render_crash_report(block, width=width, height=height))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# regression gates
# ----------------------------------------------------------------------
#: Gauge names compared for *equality*: any flip is a regression.
#: ``plan_choice`` encodes the optimizer's chosen cpu/np/join/
#: persistence, so a gate catches plan-choice flips that numeric
#: drift gates would miss. ``serialized_bytes_per_row`` pins the
#: columnar single-buffer wire format: the uncompressed encode of a
#: fixed mini-table is deterministic, so any byte of drift in the
#: layout flips the gate. Checked before SKIP_FIELDS ("cpu",
#: "partitions" are skip substrings).
EXACT_FIELDS = ("plan_choice", "serialized_bytes_per_row")


def _direction(key):
    lowered = key.lower()
    if any(tag in lowered for tag in EXACT_FIELDS):
        return "exact"
    if any(tag in lowered for tag in SKIP_FIELDS):
        return None
    if any(tag in lowered for tag in HIGHER_IS_BETTER):
        return "higher"
    if any(tag in lowered for tag in LOWER_IS_BETTER):
        return "lower"
    return None


def _flatten(payload, prefix=""):
    items = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            items.update(_flatten(value, f"{prefix}{key}."))
    elif isinstance(payload, (list, tuple)):
        for index, value in enumerate(payload):
            items.update(_flatten(value, f"{prefix}{index}."))
    elif isinstance(payload, (int, float)) and not isinstance(payload, bool):
        items[prefix[:-1]] = float(payload)
    return items


def _series_key(series):
    labels = series.get("labels", {})
    label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{series.get('name')}{{{label_text}}}"


def comparable_items(source):
    """Numeric metrics of an export, keyed for comparison.

    A ``trace/v2`` envelope contributes its flattened ``results``
    scalars; a metrics block (standalone or embedded) contributes each
    counter's total, each histogram's sum, and the last value of every
    :data:`EXACT_FIELDS` gauge (the optimizer's recorded plan choice).
    """
    if isinstance(source, str):
        with open(source) as handle:
            source = json.load(handle)
    items = {}
    if isinstance(source, dict) and "results" in source:
        items.update(_flatten(source["results"], "results."))
    block = metrics_block(source)
    if block:
        for series in block.get("series", ()):
            kind = series.get("type")
            if kind == "counter" and series.get("total") is not None:
                items[_series_key(series)] = float(series["total"])
            elif kind == "histogram" and series.get("sum") is not None:
                items[_series_key(series)] = float(series["sum"])
            elif (kind == "gauge"
                  and any(tag in (series.get("name") or "")
                          for tag in EXACT_FIELDS)
                  and series_last(series) is not None):
                items[_series_key(series)] = float(series_last(series))
    return items


def compare(old, new, gate=1.15, min_value=1e-9):
    """Diff two exports; returns comparison rows, worst first.

    A row regresses when the metric moved past ``gate`` in its bad
    direction (``new > old * gate`` for lower-is-better fields, the
    reciprocal for higher-is-better). Fields whose direction is
    ambiguous, that exist on only one side, or where both sides are
    ~zero are reported but never gate.
    """
    old_items = comparable_items(old)
    new_items = comparable_items(new)
    rows = []
    for key in sorted(set(old_items) & set(new_items)):
        old_value = old_items[key]
        new_value = new_items[key]
        direction = _direction(key)
        regression = False
        ratio = None
        if direction == "exact":
            regression = old_value != new_value
            if old_value > min_value:
                ratio = new_value / old_value
        elif max(abs(old_value), abs(new_value)) > min_value:
            if old_value > min_value:
                ratio = new_value / old_value
            if direction == "lower":
                regression = new_value > old_value * gate and (
                    new_value - old_value > min_value
                )
            elif direction == "higher":
                regression = new_value * gate < old_value and (
                    old_value - new_value > min_value
                )
        rows.append({
            "key": key,
            "old": old_value,
            "new": new_value,
            "ratio": ratio,
            "direction": direction,
            "regression": regression,
        })
    rows.sort(key=lambda row: (
        not row["regression"],
        -(row["ratio"] or 0.0),
    ))
    return rows


def render_compare(rows, gate=1.15, max_rows=40):
    """Text table of a :func:`compare` result; regressions first."""
    regressions = [row for row in rows if row["regression"]]
    lines = [
        f"### compare — {len(rows)} shared metrics, gate x{gate:g}, "
        f"{len(regressions)} regression(s)",
    ]
    shown = rows[:max_rows]
    key_width = max((len(row["key"]) for row in shown), default=3)
    for row in shown:
        ratio = f"x{row['ratio']:.3f}" if row["ratio"] else "     -"
        flag = " REGRESSION" if row["regression"] else ""
        direction = {"lower": "v", "higher": "^", "exact": "=",
                     None: " "}[row["direction"]]
        lines.append(
            f"  {direction} {row['key'].ljust(key_width)} "
            f"{row['old']:>14.6g} -> {row['new']:>14.6g} {ratio:>8}"
            f"{flag}"
        )
    if len(rows) > max_rows:
        lines.append(f"  ... {len(rows) - max_rows} more unchanged")
    return "\n".join(lines)


def has_regression(rows):
    return any(row["regression"] for row in rows)
