"""ASCII rendering for the run-history warehouse: the ``repro history
list|show|diff|trend`` views.

``render_history_diff`` is a flamegraph-style *diff*: rows keep the
target run's span start order and tree indentation, the bar visualizes
each span's self-time delta (``+`` growth right of the axis, ``-``
shrink left), and new/vanished/regressed spans are tagged inline. The
trend view draws one sparkline timeline per (rule, element) series
with flagged runs marked ``!``.
"""

from __future__ import annotations

_SPARK = " .:-=+*#%@"


def _fmt_bytes(value):
    if value is None:
        return "—"
    value = float(value)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            return (f"{value:.0f}{unit}" if unit == "B"
                    else f"{value:.1f}{unit}")
        value /= 1024.0
    return f"{value:.1f}TB"


def _fmt_seconds(value):
    if value is None:
        return "       —"
    return f"{value:>8.3f}"


def _short_meta(record):
    meta = record.get("meta") or {}
    bits = []
    for key in ("model", "dataset", "records", "bench"):
        if meta.get(key) is not None:
            bits.append(f"{key}={meta[key]}")
    return " ".join(bits) or "?"


def render_history_list(records, title="run history"):
    """One line per ingested run, ingest order."""
    lines = [f"### {title} — {len(records)} run(s)"]
    if not records:
        lines.append("  (empty store — ingest a ledger or envelope "
                     "with `repro history ingest`)")
        return "\n".join(lines)
    lines.append(
        f"  {'#':>3s} {'run_id':<16s} {'kind':<8s} {'status':<10s} "
        f"{'wall_s':>8s} {'sim_s':>8s} {'rec':>4s}  workload"
    )
    for position, record in enumerate(records):
        recovery = (record.get("recovery") or {}).get("total", 0)
        lines.append(
            f"  {position:>3d} {record.get('run_id', '?'):<16s} "
            f"{record.get('kind', '?'):<8s} "
            f"{str(record.get('status', '?')):<10.10s} "
            f"{record.get('wall_s', 0.0):>8.3f} "
            f"{record.get('sim_s', 0.0):>8.3f} "
            f"{recovery:>4d}  {_short_meta(record)}"
        )
    return "\n".join(lines)


def render_history_show(record, width=40):
    """Full single-run view: identity, knobs, stages, memory,
    calibration, recovery, SLO verdicts."""
    lines = [
        f"### run {record.get('run_id', '?')} "
        f"[{record.get('kind', '?')}] — status "
        f"{record.get('status', '?')}, "
        f"{record.get('wall_s', 0.0):.3f}s wall, "
        f"{record.get('sim_s', 0.0):.3f}s sim",
        f"  source      {record.get('source', '?')}",
        f"  fingerprint {record.get('fingerprint', '?')}  "
        f"({_short_meta(record)})",
    ]
    env = (record.get("meta") or {}).get("env") or {}
    if env:
        lines.append(
            f"  env         python {env.get('python', '?')} "
            f"{env.get('platform', '?')}/{env.get('machine', '?')} "
            f"cpus={env.get('cpu_count', '?')} "
            f"dirty={env.get('repo_dirty')}"
        )
    knobs = record.get("knobs") or {}
    if knobs:
        lines.append("  knobs       " + " ".join(
            f"{key}={knobs[key]}" for key in sorted(knobs)
        ))
    stages = record.get("stages") or {}
    if stages:
        total = sum(
            stage.get("wall_s", 0.0) or 0.0 for stage in stages.values()
        ) or 1.0
        lines.append(f"  {'stage':<20s} {'wall_s':>8s} {'self_s':>8s} "
                     f"{'sim_s':>8s}  status")
        for key in sorted(stages,
                          key=lambda k: -(stages[k].get("wall_s") or 0)):
            stage = stages[key]
            fill = int(round(
                width * (stage.get("wall_s", 0.0) or 0.0) / total
            ))
            lines.append(
                f"  {key:<20.20s} {_fmt_seconds(stage.get('wall_s'))} "
                f"{_fmt_seconds(stage.get('self_s'))} "
                f"{_fmt_seconds(stage.get('sim_s'))}  "
                f"{stage.get('status', '?'):<6.6s} "
                f"|{'#' * fill:<{width}s}|"
            )
    memory = record.get("memory") or {}
    for key in sorted(memory):
        region = memory[key]
        over = " OVER BUDGET" if region.get("over_budget") else ""
        lines.append(
            f"  mem {key:<16.16s} peak {_fmt_bytes(region.get('peak_bytes')):>9s}"
            f" / budget {_fmt_bytes(region.get('budget_bytes')):>9s}{over}"
        )
    calibration = record.get("calibration")
    if calibration:
        buckets = ", ".join(
            f"{bucket} x{ratio:.3g}"
            for bucket, ratio in (calibration.get("buckets") or {}).items()
        )
        lines.append(
            f"  calibration x{calibration.get('overall', 1.0):.3g} overall"
            + (f" ({buckets})" if buckets else "")
        )
    recovery = {k: v for k, v in (record.get("recovery") or {}).items()
                if k != "total"}
    if recovery:
        lines.append("  recovery    " + " ".join(
            f"{key}={recovery[key]}" for key in sorted(recovery)
        ))
    slo = record.get("slo")
    if slo:
        failing = slo.get("failing") or []
        lines.append(
            f"  slo         {slo.get('breach', 0)} breach, "
            f"{slo.get('warn', 0)} warn, {slo.get('pass', 0)} pass, "
            f"{slo.get('skip', 0)} skip"
            + (f" — failing: {', '.join(failing)}" if failing else "")
        )
    problems = record.get("parse_problems") or []
    for problem in problems:
        lines.append(f"  parse problem: {problem}")
    return "\n".join(lines)


def _delta_bar(delta, scale, width):
    """A signed bar around a central axis: ``-`` fills leftward for
    shrink, ``+`` rightward for growth."""
    half = width // 2
    if scale <= 0:
        fill = 0
    else:
        fill = int(round(half * min(1.0, abs(delta) / scale)))
        if fill == 0 and abs(delta) > 1e-9:
            fill = 1
    left = "-" * fill if delta < 0 else ""
    right = "+" * fill if delta > 0 else ""
    return f"{left:>{half}s}|{right:<{half}s}"


def render_history_diff(diff, width=24, max_rows=None):
    """The span-aligned flamegraph diff, target-run span order."""
    lines = [
        f"### history diff {diff.get('base_id', '?')} -> "
        f"{diff.get('target_id', '?')} — "
        f"{diff.get('matched', 0)} matched, {diff.get('new', 0)} new, "
        f"{diff.get('vanished', 0)} vanished, "
        f"{len(diff.get('regressions', ()))} regression(s)"
    ]
    status = diff.get("status") or {}
    if status.get("base") != status.get("target"):
        lines.append(
            f"  status      {status.get('base')} -> {status.get('target')}"
        )
    if not diff.get("fingerprint_match", True):
        lines.append("  fingerprint DRIFT — runs are not the same "
                     "workload/environment:")
        for key, change in sorted((diff.get("meta_changes") or {}).items()):
            lines.append(
                f"    meta {key}: {change['base']!r} -> "
                f"{change['target']!r}"
            )
    for key, change in sorted((diff.get("knob_changes") or {}).items()):
        lines.append(
            f"  knob {key}: {change['base']!r} -> {change['target']!r}"
        )
    rows = diff.get("spans") or []
    scale = max(
        (abs(row["d_self_s"]) for row in rows
         if row.get("d_self_s") is not None), default=0.0,
    )
    shown = rows if max_rows is None else rows[:max_rows]
    lines.append(
        f"  {'span':<34s} {'base':>8s} {'target':>8s} {'d_self':>8s} "
        f"{'shrink':>{width // 2}s}|{'grow':<{width // 2}s}"
    )
    for row in shown:
        indent = "  " * (row.get("target") or row.get("base")
                         or {"depth": 0}).get("depth", 0)
        name = row["path"].rsplit("/", 1)[-1]
        label = f"{indent}{name}"
        base_cell = row.get("base") or {}
        target_cell = row.get("target") or {}
        if row["align"] == "matched":
            delta = row["d_self_s"] or 0.0
            bar = _delta_bar(delta, scale, width)
            tag = ""
            if row["regression"]:
                tag = "  REGRESSION: " + "; ".join(row["reasons"])
            lines.append(
                f"  {label:<34.34s} "
                f"{_fmt_seconds(base_cell.get('self_s'))} "
                f"{_fmt_seconds(target_cell.get('self_s'))} "
                f"{delta:>+8.3f} {bar}{tag}"
            )
        elif row["align"] == "new":
            lines.append(
                f"  {label:<34.34s} {'—':>8s} "
                f"{_fmt_seconds(target_cell.get('self_s'))} "
                f"{'':>8s} {'NEW SPAN':<{width + 1}s}"
            )
        else:
            lines.append(
                f"  {label:<34.34s} "
                f"{_fmt_seconds(base_cell.get('self_s'))} {'—':>8s} "
                f"{'':>8s} {'VANISHED':<{width + 1}s}"
            )
    if max_rows is not None and len(rows) > max_rows:
        lines.append(f"  … {len(rows) - max_rows} more span(s)")
    for entry in (diff.get("metric_deltas") or [])[:8]:
        lines.append(
            f"  metric {entry['metric']}: {entry['base']} -> "
            f"{entry['target']}"
        )
    for key, change in sorted((diff.get("memory_deltas") or {}).items()):
        lines.append(
            f"  mem {key}: peak {_fmt_bytes(change['base_peak_bytes'])} "
            f"-> {_fmt_bytes(change['target_peak_bytes'])}"
            + (" (newly over budget)"
               if change.get("target_over_budget")
               and not change.get("base_over_budget") else "")
        )
    for key, change in sorted(
        (diff.get("recovery_deltas") or {}).items()
    ):
        lines.append(
            f"  recovery {key}: {change['base']} -> {change['target']}"
        )
    if diff.get("regressions"):
        lines.append(f"  {len(diff['regressions'])} regression(s):")
        for regression in diff["regressions"]:
            lines.append(
                f"    [{regression['kind']}] {regression['path']}: "
                + "; ".join(regression["reasons"])
            )
    else:
        lines.append("  zero regressions")
    return "\n".join(lines)


def _sparkline(values):
    low = min(values)
    high = max(values)
    if high <= low:
        return "-" * len(values)
    chars = []
    for value in values:
        position = (value - low) / (high - low)
        chars.append(_SPARK[min(len(_SPARK) - 1,
                                int(position * (len(_SPARK) - 1)))])
    return "".join(chars)


def render_trend(report, title="history trend"):
    """Per-(rule, element) drift timelines with flagged runs marked."""
    lines = [
        f"### {title} — {report.get('runs', 0)} run(s), "
        f"{len(report.get('flags', ()))} flag(s)"
    ]
    flagged = {
        (flag["rule"], flag["element"], flag["run_id"])
        for flag in report.get("flags", ())
    }
    for entry in report.get("rules", ()):
        label = entry["element"] or entry["metric"]
        points = entry.get("points") or []
        if entry.get("skipped"):
            lines.append(
                f"  [skip  ] {entry['rule']}: {label} — "
                f"{entry['skipped']}"
            )
            continue
        values = [value for _, value in points]
        marks = "".join(
            "!" if (entry["rule"], entry["element"], run_id) in flagged
            else "." for run_id, value in points
        )
        lines.append(
            f"  [{len(values):>4d}pt] {entry['rule']}: {label} "
            f"median {entry['median']:.6g} "
            f"[{_sparkline(values)}] [{marks}]"
        )
    for flag in report.get("flags", ()):
        lines.append(
            f"  [{flag['severity']:<6s}] {flag['rule']}: "
            f"{flag['element'] or flag['metric']} run {flag['run_id']} "
            f"value {flag['value']:.6g} vs median "
            f"{flag['median']:.6g} (z={flag['z']:+.3g})"
        )
    if not report.get("flags"):
        lines.append("  no drift flagged")
    return "\n".join(lines)
