"""ASCII chart rendering.

The paper's figures are bar/line charts; the benchmark suite renders
text equivalents so the regenerated "figures" are readable in a
terminal and diffable in CI. Crashed cells render as ``X`` bars.
"""

from __future__ import annotations

import math


def _fmt(value):
    if value is None or (isinstance(value, float) and math.isinf(value)):
        return "X"
    return f"{value:.1f}"


def bar_chart(title, items, width=40, unit=""):
    """Render labelled horizontal bars.

    ``items`` is a list of (label, value) pairs; value None or inf
    marks a crash.
    """
    lines = [f"### {title}"]
    finite = [v for _, v in items
              if v is not None and not math.isinf(v)]
    peak = max(finite) if finite else 1.0
    label_width = max((len(str(label)) for label, _ in items), default=0)
    for label, value in items:
        if value is None or math.isinf(value):
            bar = "X (crash)"
        else:
            filled = int(round(width * value / peak)) if peak else 0
            bar = "#" * max(1, filled) + f"  {_fmt(value)}{unit}"
        lines.append(f"{str(label).ljust(label_width)} | {bar}")
    return "\n".join(lines)


def line_chart(title, series, xs, height=10, width=None, unit=""):
    """Render one or more series as an ASCII scatter/line chart.

    ``series`` maps name -> list of values aligned with ``xs``.
    Each series is plotted with its own marker character.
    """
    markers = "*+o^#@"
    width = width or max(24, 6 * len(xs))
    values = [
        v for points in series.values() for v in points
        if v is not None and not math.isinf(v)
    ]
    if not values:
        return f"### {title}\n(no data)"
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for position, value in enumerate(points):
            if value is None or math.isinf(value):
                continue
            col = int(position / max(1, len(xs) - 1) * (width - 1))
            row = height - 1 - int((value - low) / span * (height - 1))
            grid[row][col] = marker
    lines = [f"### {title}"]
    lines.append(f"{_fmt(high)}{unit}")
    lines.extend("  |" + "".join(row) for row in grid)
    lines.append(f"{_fmt(low)}{unit}")
    lines.append("   " + "-" * width)
    axis = "   "
    for position, x in enumerate(xs):
        col = int(position / max(1, len(xs) - 1) * (width - 1))
        label = str(x)
        pad = col + 3 - len(axis)
        if pad >= 0:
            axis += " " * pad + label
    lines.append(axis)
    legend = "   " + "   ".join(
        f"{markers[i % len(markers)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)
