"""Plain-text reporting: ASCII bar and line charts for the benchmark
suite's figure reproductions, the flame-style trace renderer, and the
metrics-driven run report (waterlines, crash attribution, regression
gates)."""

from repro.report.ascii import bar_chart, line_chart
from repro.report.explain_ascii import render_explain
from repro.report.history_ascii import (
    render_history_diff,
    render_history_list,
    render_history_show,
    render_trend,
)
from repro.report.run_report import (
    SCENARIOS,
    attribute_crash,
    compare,
    has_regression,
    metrics_block,
    predicted_vs_observed,
    render_compare,
    render_crash_report,
    render_report,
    render_waterline,
    render_waterlines,
)
from repro.report.trace_ascii import render_trace

__all__ = [
    "SCENARIOS",
    "attribute_crash",
    "bar_chart",
    "compare",
    "has_regression",
    "line_chart",
    "metrics_block",
    "predicted_vs_observed",
    "render_compare",
    "render_crash_report",
    "render_explain",
    "render_history_diff",
    "render_history_list",
    "render_history_show",
    "render_report",
    "render_trace",
    "render_trend",
    "render_waterline",
    "render_waterlines",
]
