"""Plain-text reporting: ASCII bar and line charts for the benchmark
suite's figure reproductions."""

from repro.report.ascii import bar_chart, line_chart

__all__ = ["bar_chart", "line_chart"]
