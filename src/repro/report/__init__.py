"""Plain-text reporting: ASCII bar and line charts for the benchmark
suite's figure reproductions, plus the flame-style trace renderer."""

from repro.report.ascii import bar_chart, line_chart
from repro.report.trace_ascii import render_trace

__all__ = ["bar_chart", "line_chart", "render_trace"]
