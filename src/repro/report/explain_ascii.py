"""ASCII rendering of EXPLAIN ledgers and what-if reports.

Turns an :class:`~repro.explain.ExplainResult` into the terminal
output of ``repro explain``: the workload header, the Eq. 16 sizing
block, one table row per Algorithm 1 candidate (with its verdict),
rejection details, per-region budget bars for the winner, and — when a
what-if was attached — the pinned configuration's verdict, predicted
peaks, and predicted runtime breakdown.
"""

from __future__ import annotations

BAR_WIDTH = 44


def _human(value):
    value = float(value)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{int(value)}B"
            return f"{value:.2f}{unit}"
        value /= 1024.0


def _verdict(candidate):
    if candidate.chosen:
        return "CHOSEN"
    if candidate.feasible:
        return "feasible"
    return f"rejected: {candidate.rejection['code']}"


def _candidate_table(candidates):
    headers = (
        "cpu", "np", "user", "dl", "core", "storage", "join", "pers",
        "verdict",
    )
    rows = []
    for c in candidates:
        rows.append((
            str(c.cpu),
            str(c.num_partitions),
            _human(c.mem_user_bytes),
            _human(c.mem_dl_bytes),
            _human(c.mem_core_bytes),
            _human(c.mem_storage_bytes),
            c.join or "-",
            c.persistence or "-",
            _verdict(c),
        ))
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return lines


def _budget_bars(candidate):
    """Per-region bars of the winner's worker-memory split: how Eq. 12
    apportions ``mem_worker + DL + OS`` across the regions."""
    regions = [
        ("os", candidate.mem_os_reserved_bytes),
        ("dl", candidate.mem_dl_bytes),
        ("user", candidate.mem_user_bytes),
        ("core", candidate.mem_core_bytes),
        ("storage", max(0, candidate.mem_storage_bytes)),
    ]
    total = max(1, candidate.mem_system_bytes)
    lines = [
        f"worker memory split (system = {_human(total)}):",
    ]
    for name, nbytes in regions:
        frac = nbytes / total
        filled = max(1, round(frac * BAR_WIDTH)) if nbytes > 0 else 0
        bar = "#" * filled + "." * (BAR_WIDTH - filled)
        lines.append(
            f"  {name:7s} |{bar}| {_human(nbytes):>9s} ({frac:5.1%})"
        )
    return lines


def _what_if_lines(report):
    lines = [
        "what-if:",
        "  pins: " + (
            ", ".join(f"{k}={v}" for k, v in sorted(report.pins.items()))
            or "(none)"
        ),
        f"  plan: {report.plan}",
        f"  config: {report.config.describe()}",
        f"  verdict: {report.verdict}",
    ]
    for note in report.notes:
        lines.append(f"    note: {note}")
    lines.append("  predicted per-region peaks (paper scale, per worker):")
    for region, nbytes in report.predicted_peak_bytes.items():
        lines.append(f"    {region:8s} {_human(nbytes)}")
    if report.predicted_run_peak_bytes:
        lines.append("  predicted run peaks (executable mini workload):")
        for region, nbytes in report.predicted_run_peak_bytes.items():
            lines.append(f"    {region:8s} {_human(nbytes)}")
    runtime = report.runtime
    crash = f" (crash: {runtime.crash})" if runtime.crash else ""
    lines.append(
        f"  predicted runtime: {runtime.seconds:.1f}s{crash}"
    )
    for stage, seconds in runtime.breakdown.items():
        if seconds:
            lines.append(f"    {stage:10s} {seconds:10.1f}s")
    return lines


def render_explain(result, show_rejections=True):
    """Render an :class:`~repro.explain.ExplainResult` as text."""
    lines = [
        f"### EXPLAIN — {result.model} x {len(result.layers)} layers "
        f"({', '.join(result.layers)}), {result.num_records} records, "
        f"{result.num_nodes} nodes, backend={result.backend}",
        "",
        "sizing (Eq. 16):",
        f"  |Tstr| = {_human(result.sizing.structured_table_bytes)}   "
        f"|Timg| = {_human(result.sizing.image_table_bytes)}",
    ]
    for layer, nbytes in result.sizing.intermediate_table_bytes.items():
        lines.append(f"  |T_{layer}| = {_human(nbytes)}")
    lines.append(
        f"  s_single = {_human(result.sizing.s_single)}   "
        f"s_double = {_human(result.sizing.s_double)}"
    )
    lines.append("")
    lines.append(
        f"Algorithm 1 candidate ledger ({len(result.candidates)} "
        f"cpu candidates, highest first):"
    )
    lines.extend(_candidate_table(result.candidates))
    rejected = result.rejected()
    if show_rejections and rejected:
        lines.append("")
        lines.append("rejections:")
        for candidate in rejected:
            lines.append(
                f"  cpu={candidate.cpu}: "
                f"[{candidate.rejection['code']}] "
                f"{candidate.rejection['detail']}"
            )
    lines.append("")
    if result.chosen is not None:
        lines.append(
            f"winner: cpu={result.chosen.cpu} "
            f"np={result.chosen.num_partitions} "
            f"join={result.chosen.join} "
            f"persistence={result.chosen.persistence}"
        )
        lines.extend(_budget_bars(result.chosen))
    else:
        from repro.explain.ledger import NO_FEASIBLE_MESSAGE

        lines.append(f"NO FEASIBLE PLAN: {NO_FEASIBLE_MESSAGE}")
    if result.what_if is not None:
        lines.append("")
        lines.extend(_what_if_lines(result.what_if))
    return "\n".join(lines)
