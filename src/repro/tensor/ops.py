"""TensorOp and FlattenOp (Definitions 3.3 and 3.5).

A ``TensorOp`` is a function from a tensor of one fixed shape to a
tensor of another fixed shape. All CNN layers in :mod:`repro.cnn` are
TensorOps, which is what lets the executor treat partial CNN inference
(Def. 3.7) as plain function composition over the dataflow engine.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError


class TensorOp:
    """A function from tensors of ``input_shape`` to ``output_shape``.

    Subclasses implement :meth:`apply`. Shapes exclude any batch
    dimension: an op over a 3-d image tensor has a 3-tuple shape.

    Ops may additionally override :meth:`apply_batch`, the batched
    NHWC entry point over an ``(N, *input_shape)`` stack; the default
    falls back to looping :meth:`apply` over the batch axis, so every
    op is batch-callable even without a vectorized kernel.
    """

    def __init__(self, input_shape, output_shape, name=None):
        self.input_shape = tuple(int(d) for d in input_shape)
        self.output_shape = tuple(int(d) for d in output_shape)
        self.name = name or type(self).__name__

    def is_shape_compatible(self, tensor):
        """Return True iff ``tensor`` conforms to the expected input
        shape (Def. 3.3's shape-compatibility)."""
        return tuple(tensor.shape) == self.input_shape

    def check_shape(self, tensor):
        if not self.is_shape_compatible(tensor):
            raise ShapeError(
                f"{self.name}: tensor of shape {tuple(tensor.shape)} is not "
                f"shape-compatible with expected input {self.input_shape}"
            )

    def check_batch_shape(self, batch):
        if batch.ndim != 1 + len(self.input_shape) or \
                tuple(batch.shape[1:]) != self.input_shape:
            raise ShapeError(
                f"{self.name}: batch of shape {tuple(batch.shape)} is not "
                f"shape-compatible with expected input "
                f"(N, {', '.join(str(d) for d in self.input_shape)})"
            )

    def apply(self, tensor):
        raise NotImplementedError

    def apply_batch(self, batch):
        """Apply the op to an ``(N, *input_shape)`` stack of tensors.

        Loop fallback; vectorized ops override this.
        """
        return np.stack([self.apply(tensor) for tensor in batch])

    def __call__(self, tensor):
        self.check_shape(tensor)
        out = self.apply(tensor)
        if tuple(out.shape) != self.output_shape:
            raise ShapeError(
                f"{self.name}: produced shape {tuple(out.shape)}, "
                f"declared {self.output_shape}"
            )
        return out

    def call_batch(self, batch):
        """Shape-checked batched application (the batch analogue of
        ``__call__``)."""
        batch = np.asarray(batch)
        self.check_batch_shape(batch)
        out = self.apply_batch(batch)
        expected = (batch.shape[0],) + self.output_shape
        if tuple(out.shape) != expected:
            raise ShapeError(
                f"{self.name}: produced batch shape {tuple(out.shape)}, "
                f"declared {expected}"
            )
        return out

    @property
    def output_size(self):
        """Number of scalar elements in the output tensor."""
        return int(np.prod(self.output_shape))

    def __repr__(self):
        return (
            f"<{type(self).__name__} {self.name} "
            f"{self.input_shape}->{self.output_shape}>"
        )


class IdentityOp(TensorOp):
    """The identity TensorOp; useful as a no-op flatten stage."""

    def __init__(self, shape, name="identity"):
        super().__init__(shape, shape, name=name)

    def apply(self, tensor):
        return tensor

    def apply_batch(self, batch):
        return batch


class FlattenOp(TensorOp):
    """Flattens a tensor into a vector (Definition 3.5).

    The output is 1-d with length equal to the number of elements of
    the input tensor.
    """

    def __init__(self, input_shape, name="flatten"):
        length = int(np.prod(input_shape))
        super().__init__(input_shape, (length,), name=name)

    def apply(self, tensor):
        return np.ascontiguousarray(tensor).reshape(-1)

    def apply_batch(self, batch):
        return np.ascontiguousarray(batch).reshape(batch.shape[0], -1)


def grid_max_pool(tensor, grid=2):
    """Max-pool a (H, W, C) feature tensor down to a ``grid x grid x C``
    tensor, the dimensionality reduction the paper applies to
    convolutional feature layers before downstream training
    ("reduce the feature tensor to a 2x2 grid of the same depth",
    Section 5 footnote 4).

    Degenerate inputs smaller than the grid are returned unchanged.
    """
    if tensor.ndim != 3:
        raise ShapeError(f"grid_max_pool expects a 3-d tensor, got {tensor.ndim}-d")
    height, width, channels = tensor.shape
    if height < grid or width < grid:
        return tensor
    out = np.empty((grid, grid, channels), dtype=tensor.dtype)
    row_edges = np.linspace(0, height, grid + 1, dtype=int)
    col_edges = np.linspace(0, width, grid + 1, dtype=int)
    for i in range(grid):
        for j in range(grid):
            block = tensor[
                row_edges[i]:row_edges[i + 1], col_edges[j]:col_edges[j + 1], :
            ]
            out[i, j, :] = block.max(axis=(0, 1))
    return out


def grid_max_pool_batch(batch, grid=2):
    """Batched :func:`grid_max_pool` over an (N, H, W, C) stack; the
    grid cells are vectorized over the whole batch axis.

    Degenerate inputs smaller than the grid are returned unchanged,
    matching the per-image behaviour.
    """
    if batch.ndim != 4:
        raise ShapeError(
            f"grid_max_pool_batch expects a 4-d batch, got {batch.ndim}-d"
        )
    num, height, width, channels = batch.shape
    if height < grid or width < grid:
        return batch
    out = np.empty((num, grid, grid, channels), dtype=batch.dtype)
    row_edges = np.linspace(0, height, grid + 1, dtype=int)
    col_edges = np.linspace(0, width, grid + 1, dtype=int)
    for i in range(grid):
        for j in range(grid):
            block = batch[
                :, row_edges[i]:row_edges[i + 1],
                col_edges[j]:col_edges[j + 1], :,
            ]
            out[:, i, j, :] = block.max(axis=(1, 2))
    return out
