"""Tensor abstractions from Section 3.1 of the paper.

Implements Definitions 3.1-3.5: tensors (numpy arrays), ``TensorList``
(an indexed list of tensors of potentially different shapes),
``TensorOp`` (a fixed-shape tensor function), and ``FlattenOp``.
"""

from repro.tensor.ops import (
    FlattenOp,
    IdentityOp,
    TensorOp,
    grid_max_pool,
)
from repro.tensor.tensorlist import TensorList

__all__ = [
    "FlattenOp",
    "IdentityOp",
    "TensorOp",
    "TensorList",
    "grid_max_pool",
]
