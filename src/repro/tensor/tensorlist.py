"""TensorList (Definition 3.2): an indexed list of tensors of
potentially different shapes.

Vista stores image tensors and materialized feature tensors in records
of the dataflow engine using this datatype, and the record-size
estimator (Appendix A) accounts for its layout.
"""

from __future__ import annotations

import numpy as np


class TensorList:
    """An immutable indexed list of numpy tensors.

    Supports indexing, iteration, concatenation of flattened contents,
    and byte-size accounting used by the storage manager.
    """

    __slots__ = ("_tensors",)

    def __init__(self, tensors):
        self._tensors = tuple(np.asarray(t) for t in tensors)

    def __len__(self):
        return len(self._tensors)

    def __getitem__(self, index):
        return self._tensors[index]

    def __iter__(self):
        return iter(self._tensors)

    def shapes(self):
        """Shapes of the member tensors, in order."""
        return [tuple(t.shape) for t in self._tensors]

    def nbytes(self):
        """Total payload bytes across all member tensors."""
        return int(sum(t.nbytes for t in self._tensors))

    def num_elements(self):
        """Total scalar elements across all member tensors."""
        return int(sum(t.size for t in self._tensors))

    def append(self, tensor):
        """Return a new TensorList with ``tensor`` appended."""
        return TensorList(self._tensors + (np.asarray(tensor),))

    def flatten_concat(self):
        """Flatten every member and concatenate into one vector.

        Used when the downstream model consumes all materialized
        feature layers of a record at once.
        """
        if not self._tensors:
            return np.empty(0, dtype=np.float32)
        return np.concatenate([np.ravel(t) for t in self._tensors])

    def __eq__(self, other):
        if not isinstance(other, TensorList):
            return NotImplemented
        if len(self) != len(other):
            return False
        return all(
            a.shape == b.shape and np.array_equal(a, b)
            for a, b in zip(self._tensors, other._tensors)
        )

    def __hash__(self):
        return hash(tuple(t.tobytes() for t in self._tensors))

    def __repr__(self):
        return f"TensorList(shapes={self.shapes()})"
