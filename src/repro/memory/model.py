"""Abstract memory model and runtime accounting (Figure 4A).

A worker's System Memory is split into:

  - OS Reserved Memory (for the OS and other processes),
  - Workload Memory, itself split into
      * Execution Memory = User Memory (UDF execution: serialized CNNs,
        feature TensorLists, downstream models) + Core Memory (query
        processing: join build/probe state),
      * Storage Memory (cached intermediate data),
  - DL Execution Memory (CNN inference inside the DL system lives
    *outside* the PD system's workload memory — issue (1) of Sec. 4.1).

The :class:`MemoryAccountant` charges bytes against regions at run
time, tracks per-region peaks, and raises the matching Section 4.1
crash exception the instant a region overflows — this is what turns
the paper's "X" crash cells into testable behaviour.

With a metrics registry attached (``attach_metrics``), every charge
and release also lands on a ``mem_used_bytes`` gauge per region, so
metrics-enabled runs record the full occupancy *timeline* — including
the over-budget sample of the charge that crashed, which is what lets
:mod:`repro.report.run_report` attribute a crash to its Section 4.1
scenario from the waterline alone.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import (
    DLExecutionMemoryExceeded,
    DriverMemoryExceeded,
    ExecutionMemoryExceeded,
    UserMemoryExceeded,
)
from repro.metrics import NULL_METRICS

GB = 1024 ** 3
MB = 1024 ** 2


class Region(enum.Enum):
    """Memory regions of the abstract model."""

    USER = "user"
    CORE = "core"
    STORAGE = "storage"
    DL = "dl"
    DRIVER = "driver"


_CRASHES = {
    Region.USER: UserMemoryExceeded,
    Region.CORE: ExecutionMemoryExceeded,
    Region.DL: DLExecutionMemoryExceeded,
    Region.DRIVER: DriverMemoryExceeded,
    # STORAGE overflow is not an immediate crash: the storage manager
    # decides between eviction/spill (Spark) and a crash (pure
    # in-memory Ignite). See repro.dataflow.storage.
}


@dataclass(frozen=True)
class MemoryBudget:
    """Per-worker byte budgets for each region, plus the driver's.

    ``storage_elastic`` models Spark's moving Storage/Core boundary
    (Figure 4B): Core Memory may borrow from Storage by evicting
    cached partitions. Ignite's boundary is static (Figure 4C).
    """

    system_bytes: int
    os_reserved_bytes: int
    user_bytes: int
    core_bytes: int
    storage_bytes: int
    dl_bytes: int
    driver_bytes: int = 8 * GB
    storage_elastic: bool = True

    def workload_bytes(self):
        return self.user_bytes + self.core_bytes + self.storage_bytes

    def validate(self):
        """Check the Eq. 12 style budget identity: regions fit inside
        System Memory."""
        total = (
            self.os_reserved_bytes + self.user_bytes + self.core_bytes
            + self.storage_bytes + self.dl_bytes
        )
        return total <= self.system_bytes


@dataclass
class _RegionState:
    capacity: int
    used: int = 0
    peak: int = 0


class MemoryAccountant:
    """Charges and releases bytes against a :class:`MemoryBudget`.

    One accountant models one worker node (plus the shared driver
    region). Overflowing USER/CORE/DL/DRIVER raises the matching crash
    exception from :mod:`repro.exceptions`.
    """

    def __init__(self, budget):
        self.budget = budget
        self.metrics = NULL_METRICS
        self.owner = None
        self._gauges = None
        self._regions = {
            Region.USER: _RegionState(budget.user_bytes),
            Region.CORE: _RegionState(budget.core_bytes),
            Region.STORAGE: _RegionState(budget.storage_bytes),
            Region.DL: _RegionState(budget.dl_bytes),
            Region.DRIVER: _RegionState(budget.driver_bytes),
        }

    def attach_metrics(self, metrics, owner):
        """Emit per-region occupancy timelines on ``metrics``.

        ``owner`` labels the series (``w0``..``wN`` for workers,
        ``driver`` for the driver accountant). Region capacities —
        the budgets Algorithm 1 chose — are published once as
        ``mem_capacity_bytes`` gauges so reports can draw the budget
        line next to the occupancy waterline.
        """
        self.metrics = metrics
        self.owner = str(owner)
        self._gauges = {}
        for region, state in self._regions.items():
            metrics.gauge(
                "mem_capacity_bytes", worker=self.owner,
                region=region.value,
            ).set(state.capacity)
            gauge = metrics.gauge(
                "mem_used_bytes", worker=self.owner, region=region.value
            )
            gauge.set(state.used)
            self._gauges[region] = gauge
        return self

    def charge(self, region, nbytes, what=""):
        state = self._regions[region]
        state.used += int(nbytes)
        if state.used > state.peak:
            state.peak = state.used
        if self._gauges is not None:
            # Sampled before the overflow check so a crashing charge's
            # over-budget level is the series' last point.
            self._gauges[region].set(state.used)
        if state.used > state.capacity and region in _CRASHES:
            crash = _CRASHES[region]
            self.metrics.counter(
                "crash_total", worker=self.owner or "?",
                region=region.value, exception=crash.__name__,
            ).inc()
            raise crash(
                f"{region.value} memory exhausted: used "
                f"{state.used / GB:.2f} GB of {state.capacity / GB:.2f} GB"
                + (f" while {what}" if what else "")
            )

    def release(self, region, nbytes):
        state = self._regions[region]
        state.used = max(0, state.used - int(nbytes))
        if self._gauges is not None:
            self._gauges[region].set(state.used)

    def used(self, region):
        return self._regions[region].used

    def peak(self, region):
        return self._regions[region].peak

    def capacity(self, region):
        return self._regions[region].capacity

    def headroom_ratio(self, region):
        """Peak occupancy over budget: <1 means the region held, >1
        means the budget was (or would have been) breached."""
        state = self._regions[region]
        if state.capacity <= 0:
            return float("inf") if state.peak else 0.0
        return state.peak / state.capacity

    def available(self, region):
        state = self._regions[region]
        return max(0, state.capacity - state.used)

    def reserve(self, region, nbytes, what=""):
        """Context manager: charge on enter, release on exit."""
        return _Reservation(self, region, int(nbytes), what)

    def reset_peaks(self):
        for state in self._regions.values():
            state.peak = state.used


class _Reservation:
    def __init__(self, accountant, region, nbytes, what):
        self._accountant = accountant
        self._region = region
        self._nbytes = nbytes
        self._what = what

    def __enter__(self):
        self._accountant.charge(self._region, self._nbytes, what=self._what)
        return self

    def __exit__(self, exc_type, exc, tb):
        self._accountant.release(self._region, self._nbytes)
        return False
