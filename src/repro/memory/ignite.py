"""Ignite's memory model (Figure 4C).

Ignite treats User and Core as one unified on-heap region and puts
Storage Memory *off-heap* in JVM native memory with a **static** size.
Configured memory-only (as in the paper's experiments), Storage cannot
spill: overflowing it crashes the workload, which is why Lazy-7 and
Eager crash on Ignite in Figure 6 where Spark merely spills.
"""

from __future__ import annotations

from repro.memory.model import GB, MemoryBudget


def ignite_memory_budget(system_bytes, heap_bytes, storage_bytes,
                         os_reserved_bytes=3 * GB, user_core_split=0.6,
                         driver_bytes=8 * GB):
    """Budget for an Ignite worker.

    The heap is split between the (unified) User and Core roles with a
    fixed fraction so the shared accountant can still attribute
    overflows to the right crash scenario; ``storage_bytes`` is the
    static off-heap data region.
    """
    user = int(heap_bytes * user_core_split)
    core = heap_bytes - user
    dl = max(
        0, system_bytes - os_reserved_bytes - heap_bytes - storage_bytes
    )
    return MemoryBudget(
        system_bytes=system_bytes,
        os_reserved_bytes=os_reserved_bytes,
        user_bytes=user,
        core_bytes=core,
        storage_bytes=storage_bytes,
        dl_bytes=dl,
        driver_bytes=driver_bytes,
        storage_elastic=False,
    )
