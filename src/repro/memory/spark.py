"""Spark's memory model (Figure 4B).

User, Core, and Storage Memory live in the JVM heap; with default
configurations 40% of the heap is User Memory and the remaining 60%
is shared between Storage and Core with a moving boundary (Storage can
be evicted down to a protected fraction). DL Execution Memory lives
outside the heap, in whatever System Memory the JVM does not claim.
"""

from __future__ import annotations

from repro.memory.model import GB, MemoryBudget

#: Spark defaults (spark.memory.fraction etc., per the paper's setup).
DEFAULT_USER_FRACTION = 0.4
DEFAULT_STORAGE_SHARE = 0.5  # protected storage fraction of unified region


def spark_memory_budget(system_bytes, heap_bytes, os_reserved_bytes=3 * GB,
                        user_fraction=DEFAULT_USER_FRACTION,
                        storage_share=DEFAULT_STORAGE_SHARE,
                        driver_bytes=8 * GB):
    """Budget for a Spark worker with a given JVM heap.

    Everything outside heap + OS reserve is available to the DL system
    (TensorFlow in the paper, our numpy engine here).
    """
    user = int(heap_bytes * user_fraction)
    unified = heap_bytes - user
    storage = int(unified * storage_share)
    core = unified - storage
    dl = max(0, system_bytes - os_reserved_bytes - heap_bytes)
    return MemoryBudget(
        system_bytes=system_bytes,
        os_reserved_bytes=os_reserved_bytes,
        user_bytes=user,
        core_bytes=core,
        storage_bytes=storage,
        dl_bytes=dl,
        driver_bytes=driver_bytes,
        storage_elastic=True,
    )


def spark_budget_from_regions(system_bytes, user_bytes, core_bytes,
                              storage_bytes, os_reserved_bytes=3 * GB,
                              driver_bytes=8 * GB):
    """Budget with explicitly apportioned regions — what Vista does
    after the optimizer picks ``mem_user``/``mem_core``/``mem_storage``
    (Table 1B); DL gets the remainder of System Memory."""
    dl = max(
        0,
        system_bytes - os_reserved_bytes - user_bytes - core_bytes
        - storage_bytes,
    )
    return MemoryBudget(
        system_bytes=system_bytes,
        os_reserved_bytes=os_reserved_bytes,
        user_bytes=user_bytes,
        core_bytes=core_bytes,
        storage_bytes=storage_bytes,
        dl_bytes=dl,
        driver_bytes=driver_bytes,
        storage_elastic=True,
    )
