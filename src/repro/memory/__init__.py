"""Distributed memory apportioning (Section 4.1, Figure 4).

``model`` implements the paper's abstract memory model — System Memory
split into OS-Reserved, User, Core, Storage, and DL-Execution regions —
plus a runtime accountant that raises the Section 4.1 crash scenarios
when a region is exhausted. ``spark`` and ``ignite`` map the abstract
model onto the two PD backends the paper prototypes on (Figure 4B/C).
"""

from repro.memory.model import MemoryAccountant, MemoryBudget, Region
from repro.memory.spark import spark_memory_budget
from repro.memory.ignite import ignite_memory_budget

__all__ = [
    "MemoryAccountant",
    "MemoryBudget",
    "Region",
    "ignite_memory_budget",
    "spark_memory_budget",
]
