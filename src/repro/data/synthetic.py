"""Core synthetic multimodal data machinery.

Each record has a binary label, a structured feature vector whose
informative dimensions carry a noisy copy of the label, and an image
whose content carries a partially *independent* copy of the label
(matching the paper's premise that images add information the
structured features lack — Figure 8's lift).

Image synthesis embeds the label at two spatial scales:

- a coarse pattern (a bright diagonal band whose orientation flips
  with the label) that survives pooling and deep layers, and
- a fine oriented texture (vertical vs horizontal stripes) that HOG
  and low/mid layers pick up,

plus pixel noise. Any fixed conv+ReLU feature map — including our
seeded-random "pretrained" CNNs — preserves enough of both signals for
a linear model to exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def synthesize_image(rng, label, shape=(32, 32, 3), signal_strength=1.0,
                     label_flip_prob=0.15):
    """Generate one image with label-dependent structure.

    With probability ``label_flip_prob`` the image encodes the wrong
    label, so image features are informative but not a perfect proxy —
    keeping downstream F1 lifts in the paper's few-point range rather
    than jumping to 100%.
    """
    height, width, channels = shape
    visual_label = int(label)
    if rng.random() < label_flip_prob:
        visual_label = 1 - visual_label
    ys, xs = np.mgrid[0:height, 0:width]
    # Coarse: diagonal band, direction flips with the label.
    diag = (xs + ys) if visual_label else (xs - ys + width)
    band = np.exp(-np.square(diag - (height + width) / 2.0) / (2.0 * 16.0))
    # Fine: orientation of a stripe texture flips with the label.
    stripes = np.sin(2.0 * np.pi * (xs if visual_label else ys) / 4.0)
    image = np.empty(shape, dtype=np.float32)
    for channel in range(channels):
        tone = 0.5 + 0.2 * visual_label - 0.1 * channel / max(1, channels - 1)
        image[..., channel] = (
            tone
            + signal_strength * (0.8 * band + 0.25 * stripes)
            + rng.normal(0.0, 0.35, size=(height, width))
        )
    return image


def synthesize_structured(rng, label, num_features, informative=10,
                          signal_strength=0.9):
    """Structured feature vector: the first ``informative`` dimensions
    carry a noisy label signal, the rest are standard normal noise."""
    features = rng.normal(0.0, 1.0, size=num_features).astype(np.float32)
    direction = np.linspace(1.0, 0.3, informative)
    features[:informative] += (
        signal_strength * direction * (2.0 * label - 1.0)
    ).astype(np.float32)
    return features


@dataclass
class MultimodalDataset:
    """A generated multimodal dataset: Tstr and Timg as row lists.

    ``structured_rows``: dicts with id, features (float32 vector),
    label (0/1). ``image_rows``: dicts with id, image (float32 HxWxC
    tensor, the decoded form of the paper's raw JPEG column).
    """

    name: str
    structured_rows: list = field(repr=False)
    image_rows: list = field(repr=False)
    num_structured_features: int = 0
    image_shape: tuple = (32, 32, 3)

    def __len__(self):
        return len(self.structured_rows)

    def labels(self):
        return np.array(
            [row["label"] for row in self.structured_rows], dtype=np.int64
        )

    def structured_matrix(self):
        return np.stack([row["features"] for row in self.structured_rows])

    def images(self):
        return [row["image"] for row in self.image_rows]


def generate_dataset(name, num_records, num_structured_features,
                     image_shape=(32, 32, 3), informative=10,
                     structured_signal=0.9, image_signal=1.0,
                     image_label_flip=0.15, positive_fraction=0.5, seed=0,
                     images_per_record=1):
    """Generate a :class:`MultimodalDataset` with the given shape.

    ``images_per_record > 1`` stores a TensorList of images per record
    (the paper's "multiple images per example" future-work extension);
    with 1 the image column is a plain tensor.
    """
    from repro.tensor.tensorlist import TensorList

    rng = np.random.default_rng(seed)
    structured_rows = []
    image_rows = []
    for record_id in range(num_records):
        label = int(rng.random() < positive_fraction)
        structured_rows.append(
            {
                "id": record_id,
                "features": synthesize_structured(
                    rng, label, num_structured_features,
                    informative=informative,
                    signal_strength=structured_signal,
                ),
                "label": label,
            }
        )
        images = [
            synthesize_image(
                rng, label, shape=image_shape,
                signal_strength=image_signal,
                label_flip_prob=image_label_flip,
            )
            for _ in range(images_per_record)
        ]
        image_rows.append(
            {
                "id": record_id,
                "image": images[0] if images_per_record == 1
                else TensorList(images),
            }
        )
    return MultimodalDataset(
        name=name,
        structured_rows=structured_rows,
        image_rows=image_rows,
        num_structured_features=num_structured_features,
        image_shape=tuple(image_shape),
    )
