"""Amazon-like dataset (He & McAuley product-review analogue).

The paper's Amazon dataset: "about 200,000 examples with structured
features such as price, title, and categories, as well as a product
image. The target is the sales rank, which we binarize as a popular
product or not"; titles are embedded into 100 Doc2Vec features and
categories into 100 PCA features (3 GB raw).

We model the 200 derived numeric features directly. The structured
signal is weaker than Foods' (the paper's Amazon F1 baseline is ~59%
vs Foods' ~80%).
"""

from __future__ import annotations

from repro.data.synthetic import generate_dataset

PAPER_NUM_RECORDS = 200_000
PAPER_SAMPLE_NUM_RECORDS = 20_000  # Section 5.2 uses a 20k sample
PAPER_NUM_STRUCTURED_FEATURES = 200
PAPER_RAW_SIZE_GB = 3.0


def amazon_dataset(num_records=400, image_shape=(32, 32, 3), seed=11):
    """Generate the Amazon analogue at a chosen scale."""
    return generate_dataset(
        name="amazon",
        num_records=num_records,
        num_structured_features=PAPER_NUM_STRUCTURED_FEATURES,
        image_shape=image_shape,
        informative=8,
        structured_signal=0.18,
        image_signal=0.7,
        image_label_flip=0.3,
        positive_fraction=0.5,
        seed=seed,
    )
