"""Semi-synthetic dataset scaling (Section 5.3).

The drill-down experiments "alter [Foods] semi-synthetically ...
vary the data scale by replicating records (say, '4X') or varying the
number of structured features (with random values)". These helpers do
exactly that on a :class:`MultimodalDataset`.
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import MultimodalDataset


def replicate_dataset(dataset, factor):
    """Replicate records ``factor`` times with fresh unique ids."""
    if factor < 1 or int(factor) != factor:
        raise ValueError(f"scale factor must be a positive integer, got {factor}")
    factor = int(factor)
    base = len(dataset)
    structured_rows = []
    image_rows = []
    for copy in range(factor):
        offset = copy * base
        for srow, irow in zip(dataset.structured_rows, dataset.image_rows):
            structured_rows.append(
                {
                    "id": srow["id"] + offset,
                    "features": srow["features"],
                    "label": srow["label"],
                }
            )
            image_rows.append(
                {"id": irow["id"] + offset, "image": irow["image"]}
            )
    return MultimodalDataset(
        name=f"{dataset.name}/{factor}X",
        structured_rows=structured_rows,
        image_rows=image_rows,
        num_structured_features=dataset.num_structured_features,
        image_shape=dataset.image_shape,
    )


def widen_structured_features(dataset, num_features, seed=0):
    """Pad (with random values) or truncate structured vectors to
    ``num_features`` dimensions."""
    rng = np.random.default_rng(seed)
    structured_rows = []
    for row in dataset.structured_rows:
        features = row["features"]
        if num_features <= len(features):
            widened = features[:num_features]
        else:
            extra = rng.normal(
                0.0, 1.0, size=num_features - len(features)
            ).astype(np.float32)
            widened = np.concatenate([features, extra])
        structured_rows.append(
            {"id": row["id"], "features": widened, "label": row["label"]}
        )
    return MultimodalDataset(
        name=f"{dataset.name}/{num_features}f",
        structured_rows=structured_rows,
        image_rows=dataset.image_rows,
        num_structured_features=num_features,
        image_shape=dataset.image_shape,
    )
