"""Synthetic multimodal datasets standing in for Foods and Amazon.

The paper's two real datasets are unavailable offline, so this package
generates datasets that match them on every axis the experiments vary:
row counts (scaled), structured feature counts (130 for Foods, 200 for
Amazon), one image per record, binary targets, and — crucially for the
accuracy experiment — label signal embedded in *both* modalities so
that adding image features lifts F1 and CNN features beat HOG.
"""

from repro.data.synthetic import MultimodalDataset, synthesize_image
from repro.data.foods import foods_dataset
from repro.data.amazon import amazon_dataset
from repro.data.scaling import replicate_dataset, widen_structured_features

__all__ = [
    "MultimodalDataset",
    "amazon_dataset",
    "foods_dataset",
    "replicate_dataset",
    "synthesize_image",
    "widen_structured_features",
]
