"""Foods-like dataset (Open Food Facts analogue).

The paper's Foods dataset: "about 20,000 examples with 130 structured
numeric features such as nutrition facts along with their feature
interactions and an image of each food item. The target represents if
the food is plant-based or not" (~300 MB raw).

``num_records`` defaults far below 20,000 so mini-profile CNN runs
stay fast; benchmarks pass larger values and the cost model always
reasons at the paper's full 20,000.
"""

from __future__ import annotations

from repro.data.synthetic import generate_dataset

PAPER_NUM_RECORDS = 20_000
PAPER_NUM_STRUCTURED_FEATURES = 130
PAPER_RAW_SIZE_GB = 0.3
PAPER_AVG_IMAGE_KB = 14.0  # the paper's ResNet50 example: 14 KB JPEG


def foods_dataset(num_records=400, image_shape=(32, 32, 3), seed=7):
    """Generate the Foods analogue at a chosen scale."""
    return generate_dataset(
        name="foods",
        num_records=num_records,
        num_structured_features=PAPER_NUM_STRUCTURED_FEATURES,
        image_shape=image_shape,
        informative=12,
        structured_signal=0.55,
        image_signal=1.0,
        image_label_flip=0.15,
        positive_fraction=0.5,
        seed=seed,
    )
